//! The embedded live-introspection control plane: a dependency-free
//! HTTP/1.1 server hand-rolled over `std::net::TcpListener` (matching the
//! repo's hand-rolled wire-codec idiom — no async runtime in the offline
//! image), serving read-only views of an [`ObsHub`]:
//!
//! * `GET /healthz` — liveness probe (`ok`);
//! * `GET /status`  — JSON: per-shard progress, cycles/sec over a sliding
//!   window, stall breakdown, load imbalance, merged latency quantiles,
//!   checkpoint/restart counters;
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4) rendered
//!   from the latest `MetricsRegistry` snapshots plus coordinator
//!   aggregates, with log₂ latency histograms merged across shards;
//! * `GET /trace?since_cycle=N` — recent runtime trace events as JSONL;
//! * `GET /alerts`  — rising-edge threshold-alert firings as JSON.
//!
//! The hub is strictly a *sink*: producers push copies of samples and
//! events in, HTTP handlers render snapshots out, and nothing ever flows
//! back into the simulation — which is how stats and flit traces stay
//! bit-identical with the server enabled. Also here: [`http_get`] (the
//! matching hand-rolled client used by `hornet-dist watch` and the tests),
//! a minimal JSON value parser ([`Json`]), and [`lint_prometheus`], the
//! exposition-format linter CI runs over scraped payloads.

use crate::alert::{AlertConfig, AlertEvaluator};
use crate::history::{histogram_quantile, metrics_histogram, TelemetryHistory};
use crate::metrics::{escape_json, TelemetrySample, HISTOGRAM_BUCKETS};
use crate::olog_info;
use crate::trace::{TraceDump, TraceEvent};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Sliding window for the `/status` cycles/sec estimate.
const RATE_WINDOW_MS: u64 = 5_000;

/// Everything the endpoints render, behind one mutex.
struct HubInner {
    history: TelemetryHistory,
    alerts: AlertEvaluator,
    trace: VecDeque<TraceEvent>,
    trace_capacity: usize,
    trace_dropped: u64,
    gauges: Vec<(String, u64)>,
}

/// The shared observation state an [`ObsServer`] serves: a telemetry
/// history ring, an alert evaluator, a bounded buffer of runtime trace
/// events, and named coordinator gauges (restarts, committed cycle, …).
///
/// Producers call [`ingest`](Self::ingest) / [`record_trace`](Self::record_trace)
/// / [`set_gauge`](Self::set_gauge); endpoint renderers only read. All
/// methods take `&self` — the hub is designed to be shared as an
/// `Arc<ObsHub>` between the simulation and the server threads.
pub struct ObsHub {
    started: Instant,
    inner: Mutex<HubInner>,
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (samples, events) = self
            .inner
            .lock()
            .map(|i| (i.history.len(), i.trace.len()))
            .unwrap_or((0, 0));
        f.debug_struct("ObsHub")
            .field("samples", &samples)
            .field("trace_events", &events)
            .finish()
    }
}

impl Default for ObsHub {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsHub {
    /// A hub with default capacities (2048 samples, 4096 trace events) and
    /// default alert thresholds.
    pub fn new() -> Self {
        Self::with_capacity(2_048, 4_096)
    }

    /// A hub retaining at most `history` samples and `trace` runtime events.
    pub fn with_capacity(history: usize, trace: usize) -> Self {
        Self {
            started: Instant::now(),
            inner: Mutex::new(HubInner {
                history: TelemetryHistory::new(history),
                alerts: AlertEvaluator::new(AlertConfig::default()),
                trace: VecDeque::new(),
                trace_capacity: trace.max(1),
                trace_dropped: 0,
                gauges: Vec::new(),
            }),
        }
    }

    /// Milliseconds since the hub was created.
    pub fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubInner> {
        self.inner.lock().expect("obs hub poisoned")
    }

    /// Records one telemetry sample: appended to the history ring and fed
    /// through the alert evaluator.
    pub fn ingest(&self, sample: &TelemetrySample) {
        let at_ms = self.now_ms();
        let mut inner = self.lock();
        inner.alerts.observe(sample);
        inner.history.push(at_ms, sample.clone());
    }

    /// Records one runtime trace event into the live buffer (drop-oldest:
    /// the live view favors recency, unlike the deterministic
    /// [`TraceRing`](crate::trace::TraceRing), and counts what it evicts).
    pub fn record_trace(&self, ev: TraceEvent) {
        let mut inner = self.lock();
        if inner.trace.len() == inner.trace_capacity {
            inner.trace.pop_front();
            inner.trace_dropped += 1;
        }
        inner.trace.push_back(ev);
    }

    /// Publishes every event of a dump into the live buffer.
    pub fn publish_trace(&self, dump: &TraceDump) {
        for ev in &dump.events {
            self.record_trace(*ev);
        }
    }

    /// Sets (or creates) a named coordinator gauge — restart counts,
    /// committed checkpoint cycle, connected workers, and the like.
    pub fn set_gauge(&self, name: &str, v: u64) {
        let mut inner = self.lock();
        match inner.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = v,
            None => inner.gauges.push((name.to_string(), v)),
        }
    }

    /// Current value of a coordinator gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.lock()
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Merged packet-latency histogram across the latest sample of every
    /// shard, plus the total count. `None` until a shard ships one.
    fn merged_latency(inner: &HubInner) -> Option<[u64; HISTOGRAM_BUCKETS]> {
        let mut merged: Option<[u64; HISTOGRAM_BUCKETS]> = None;
        for e in inner.history.latest_per_shard() {
            if let Some(h) = metrics_histogram(&e.sample.metrics, "packet_latency") {
                let m = merged.get_or_insert([0; HISTOGRAM_BUCKETS]);
                for (slot, v) in m.iter_mut().zip(h.iter()) {
                    *slot += v;
                }
            }
        }
        merged
    }

    /// The `/status` document.
    pub fn status_json(&self) -> String {
        let now_ms = self.now_ms();
        let inner = self.lock();
        let latest = inner.history.latest_per_shard();
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"uptime_ms\":{},\"samples\":{},\"shards_reporting\":{},",
            now_ms,
            inner.history.len(),
            latest.len()
        );
        // Coordinator gauges (restart/checkpoint counters live here).
        s.push_str("\"gauges\":{");
        for (i, (name, v)) in inner.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", escape_json(name), v);
        }
        s.push_str("},");
        // Merged latency quantiles.
        match Self::merged_latency(&inner) {
            Some(h) => {
                let _ = write!(
                    s,
                    "\"latency\":{{\"count\":{},\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1}}},",
                    h.iter().sum::<u64>(),
                    histogram_quantile(&h, 0.50),
                    histogram_quantile(&h, 0.95),
                    histogram_quantile(&h, 0.99),
                );
            }
            None => s.push_str("\"latency\":null,"),
        }
        // Run-wide load imbalance from the latest per-shard compute times.
        let computes: Vec<u64> = latest
            .iter()
            .map(|e| e.sample.profile.compute_ns)
            .filter(|&c| c > 0)
            .collect();
        if computes.len() >= 2 {
            let max = *computes.iter().max().unwrap() as f64;
            let mean = computes.iter().sum::<u64>() as f64 / computes.len() as f64;
            let _ = write!(s, "\"load_imbalance\":{:.4},", max / mean);
        } else {
            s.push_str("\"load_imbalance\":null,");
        }
        let _ = write!(
            s,
            "\"alerts\":{{\"active\":{},\"total\":{}}},",
            inner.alerts.active(),
            inner.alerts.total_firings()
        );
        s.push_str("\"shards\":[");
        for (i, e) in latest.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let sm = &e.sample;
            let _ = write!(
                s,
                "{{\"shard\":{},\"cycle\":{},\"age_ms\":{},",
                sm.shard,
                sm.cycle,
                now_ms.saturating_sub(e.at_ms)
            );
            match inner
                .history
                .cycles_per_sec(sm.shard, RATE_WINDOW_MS, now_ms)
            {
                Some(r) => {
                    let _ = write!(s, "\"cycles_per_sec\":{r:.1},");
                }
                None => s.push_str("\"cycles_per_sec\":null,"),
            }
            let f = sm.profile.fractions();
            let _ = write!(
                s,
                "\"received\":{},\"busy\":{},\"delivered_packets\":{},\
                 \"delivered_flits\":{},\"injected_flits\":{},\"buffered_flits\":{},\
                 \"stall\":{{\"compute\":{:.4},\"wait\":{:.4},\"ingest\":{:.4},\"flush\":{:.4}}}}}",
                sm.received,
                sm.busy,
                sm.delivered_packets,
                sm.delivered_flits,
                sm.injected_flits,
                sm.buffered_flits,
                f[0],
                f[1],
                f[2],
                f[3],
            );
        }
        s.push_str("]}");
        s
    }

    /// The `/alerts` document.
    pub fn alerts_json(&self) -> String {
        let inner = self.lock();
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"active\":{},\"total\":{},\"firings\":[",
            inner.alerts.active(),
            inner.alerts.total_firings()
        );
        for (i, f) in inner.alerts.firings().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let shard = if f.shard == u32::MAX {
                -1i64
            } else {
                f.shard as i64
            };
            let _ = write!(
                s,
                "{{\"rule\":\"{}\",\"shard\":{},\"cycle\":{},\"value\":{:.4},\
                 \"threshold\":{:.4},\"message\":\"{}\"}}",
                f.rule,
                shard,
                f.cycle,
                f.value,
                f.threshold,
                escape_json(&f.message)
            );
        }
        s.push_str("]}");
        s
    }

    /// The `/trace` document: events at `cycle >= since_cycle` as JSONL,
    /// terminated by the unconditional summary line (same shape as
    /// [`TraceDump::to_jsonl`]).
    pub fn trace_jsonl(&self, since_cycle: u64) -> String {
        let inner = self.lock();
        let mut out = String::with_capacity(256);
        let mut n = 0u64;
        for e in inner.trace.iter().filter(|e| e.cycle >= since_cycle) {
            let _ = writeln!(
                out,
                "{{\"cycle\":{},\"node\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                e.cycle,
                e.node,
                e.kind.name(),
                e.a,
                e.b
            );
            n += 1;
        }
        let _ = writeln!(
            out,
            "{{\"events\":{},\"dropped\":{}}}",
            n, inner.trace_dropped
        );
        out
    }

    /// The `/metrics` document (Prometheus text exposition, format 0.0.4).
    pub fn prometheus(&self) -> String {
        let inner = self.lock();
        let mut out = String::with_capacity(4096);
        let decl = |out: &mut String, name: &str, kind: &str, help: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
        };
        decl(&mut out, "hornet_up", "gauge", "Server liveness.");
        let _ = writeln!(out, "hornet_up 1");
        decl(
            &mut out,
            "hornet_uptime_seconds",
            "gauge",
            "Seconds since the hub started.",
        );
        let _ = writeln!(
            out,
            "hornet_uptime_seconds {:.3}",
            self.started.elapsed().as_secs_f64()
        );
        decl(
            &mut out,
            "hornet_samples_retained",
            "gauge",
            "Telemetry samples in the history ring.",
        );
        let _ = writeln!(out, "hornet_samples_retained {}", inner.history.len());
        decl(
            &mut out,
            "hornet_alerts_fired_total",
            "counter",
            "Rising-edge alert firings since start.",
        );
        let _ = writeln!(
            out,
            "hornet_alerts_fired_total {}",
            inner.alerts.total_firings()
        );
        decl(
            &mut out,
            "hornet_alerts_active",
            "gauge",
            "Alert conditions currently true.",
        );
        let _ = writeln!(out, "hornet_alerts_active {}", inner.alerts.active());
        // Coordinator gauges.
        for (name, v) in &inner.gauges {
            let metric = format!("hornet_{}", sanitize_metric_name(name));
            decl(&mut out, &metric, "gauge", "Coordinator gauge.");
            let _ = writeln!(out, "{metric} {v}");
        }

        // Per-shard fixed fields from the latest sample of each shard.
        type SampleField = fn(&TelemetrySample) -> u64;
        let latest = inner.history.latest_per_shard();
        let fixed: [(&str, &str, SampleField); 7] = [
            ("hornet_shard_cycle", "gauge", |s| s.cycle),
            ("hornet_shard_received_flits", "gauge", |s| s.received),
            ("hornet_shard_busy_flits", "gauge", |s| s.busy),
            ("hornet_shard_delivered_packets", "gauge", |s| {
                s.delivered_packets
            }),
            ("hornet_shard_delivered_flits", "gauge", |s| {
                s.delivered_flits
            }),
            ("hornet_shard_injected_flits", "gauge", |s| s.injected_flits),
            ("hornet_shard_buffered_flits", "gauge", |s| s.buffered_flits),
        ];
        if !latest.is_empty() {
            for (name, kind, get) in fixed {
                decl(&mut out, name, kind, "Latest per-shard sample field.");
                for e in &latest {
                    let _ = writeln!(
                        out,
                        "{name}{{shard=\"{}\"}} {}",
                        e.sample.shard,
                        get(&e.sample)
                    );
                }
            }
            decl(
                &mut out,
                "hornet_shard_stall_seconds",
                "gauge",
                "Wall time attributed to each driver phase.",
            );
            for e in &latest {
                let p = &e.sample.profile;
                for (phase, ns) in [
                    ("compute", p.compute_ns),
                    ("wait", p.wait_ns),
                    ("ingest", p.ingest_ns),
                    ("flush", p.flush_ns),
                ] {
                    let _ = writeln!(
                        out,
                        "hornet_shard_stall_seconds{{shard=\"{}\",phase=\"{phase}\"}} {:.6}",
                        e.sample.shard,
                        ns as f64 / 1e9
                    );
                }
            }
        }

        // Generic registry metrics: histogram families (a `<f>_count` key
        // with at least one `<f>_b<i>` bucket in the same sample) are merged
        // across shards and re-assembled into cumulative buckets; everything
        // else is exported per shard as a gauge.
        let mut families: Vec<String> = Vec::new();
        for e in &latest {
            for (name, _) in &e.sample.metrics {
                if let Some((prefix, idx)) = name.rsplit_once("_b") {
                    if idx.parse::<usize>().is_ok()
                        && e.sample
                            .metrics
                            .iter()
                            .any(|(n, _)| *n == format!("{prefix}_count"))
                        && !families.iter().any(|f| f == prefix)
                    {
                        families.push(prefix.to_string());
                    }
                }
            }
        }
        let is_hist_part = |name: &str| {
            families.iter().any(|f| {
                name == format!("{f}_count")
                    || name
                        .strip_prefix(&format!("{f}_b"))
                        .is_some_and(|i| i.parse::<usize>().is_ok())
            })
        };
        let mut scalar_declared: Vec<String> = Vec::new();
        for e in &latest {
            for (name, v) in &e.sample.metrics {
                if is_hist_part(name) {
                    continue;
                }
                let metric = format!("hornet_m_{}", sanitize_metric_name(name));
                if !scalar_declared.contains(&metric) {
                    decl(&mut out, &metric, "gauge", "Shard registry metric.");
                    scalar_declared.push(metric.clone());
                }
                let _ = writeln!(out, "{metric}{{shard=\"{}\"}} {v}", e.sample.shard);
            }
        }
        for family in &families {
            let mut merged = [0u64; HISTOGRAM_BUCKETS];
            for e in &latest {
                if let Some(h) = metrics_histogram(&e.sample.metrics, family) {
                    for (slot, v) in merged.iter_mut().zip(h.iter()) {
                        *slot += v;
                    }
                }
            }
            let metric = format!("hornet_{}", sanitize_metric_name(family));
            decl(
                &mut out,
                &metric,
                "histogram",
                "Log2-bucketed histogram merged across shards.",
            );
            let mut cum = 0u64;
            for (i, &b) in merged.iter().enumerate() {
                cum += b;
                // Upper bound of log2 bucket i in the packet-latency
                // convention ([2^i, 2^(i+1))).
                let le = 1u64 << (i + 1).min(63);
                let _ = writeln!(out, "{metric}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {cum}");
            let _ = writeln!(out, "{metric}_count {cum}");
        }
        // Merged latency quantiles as plain gauges (PromQL-free p50/p95/p99).
        if let Some(h) = Self::merged_latency(&inner) {
            for (q, name) in [
                (0.50, "hornet_packet_latency_p50"),
                (0.95, "hornet_packet_latency_p95"),
                (0.99, "hornet_packet_latency_p99"),
            ] {
                decl(
                    &mut out,
                    name,
                    "gauge",
                    "Estimated packet-latency quantile (cycles).",
                );
                let _ = writeln!(out, "{name} {:.1}", histogram_quantile(&h, q));
            }
        }
        out
    }
}

/// Replaces every character outside `[a-zA-Z0-9_:]` with `_`, prefixing a
/// leading digit — Prometheus metric-name charset.
fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// A running HTTP server bound to a local address: blocking accept loop in
/// one named thread, one short-lived thread per connection (scrape cadence,
/// not serving cadence). [`shutdown`](Self::shutdown) (also on drop) stops
/// the loop by raising a flag and self-connecting to unblock `accept`.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port — see
    /// [`addr`](Self::addr)) and starts serving `hub`.
    ///
    /// # Errors
    ///
    /// The bind or thread-spawn failure.
    pub fn spawn(addr: &str, hub: Arc<ObsHub>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = thread::Builder::new()
            .name("hornet-obs-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let hub = hub.clone();
                    let _ = thread::Builder::new()
                        .name("hornet-obs-conn".into())
                        .spawn(move || handle_connection(stream, &hub));
                }
            })?;
        olog_info!("obs", { addr = local }, "observability server listening");
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads one request head, routes it, writes one response, closes.
fn handle_connection(mut stream: TcpStream, hub: &ObsHub) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
        }
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8 * 1024 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (status, ctype, body) = route(hub, method, target);
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Maps a request to `(status, content-type, body)`.
fn route(hub: &ObsHub, method: &str, target: &str) -> (u16, &'static str, String) {
    const TEXT: &str = "text/plain; charset=utf-8";
    const JSON: &str = "application/json";
    if method != "GET" {
        return (405, TEXT, "method not allowed\n".into());
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/" => (
            200,
            TEXT,
            "hornet observability endpoints: /healthz /status /metrics /trace?since_cycle=N /alerts\n"
                .into(),
        ),
        "/healthz" => (200, TEXT, "ok\n".into()),
        "/status" => (200, JSON, hub.status_json()),
        "/alerts" => (200, JSON, hub.alerts_json()),
        "/metrics" => (200, "text/plain; version=0.0.4", hub.prometheus()),
        "/trace" => {
            let mut since = 0u64;
            for pair in query.split('&') {
                if let Some(v) = pair.strip_prefix("since_cycle=") {
                    match v.parse() {
                        Ok(n) => since = n,
                        Err(_) => return (400, TEXT, "bad since_cycle\n".into()),
                    }
                }
            }
            (200, "application/x-ndjson", hub.trace_jsonl(since))
        }
        _ => (404, TEXT, "not found\n".into()),
    }
}

/// Minimal blocking HTTP/1.1 GET (the client half of the hand-rolled
/// protocol): returns `(status_code, body)`.
///
/// # Errors
///
/// Connection, timeout or malformed-response failures.
pub fn http_get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let bad = || io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response");
    let status: u16 = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .ok_or_else(bad)?;
    let body = text.split_once("\r\n\r\n").ok_or_else(bad)?.1.to_string();
    Ok((status, body))
}

/// A parsed JSON value — just enough for `hornet-dist watch` and the tests
/// to consume `/status` without a serde dependency.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// A description of the first syntax error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Copy the full UTF-8 sequence starting at `b`.
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xf0 => 4,
                        _ if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad UTF-8")?);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Lints one Prometheus text-exposition document (the subset this crate
/// emits): every line is a `# HELP`, a `# TYPE`, or a sample; metric names
/// match the Prometheus charset; every sample belongs to a family with a
/// preceding `# TYPE`; for histogram families the `_bucket` series is
/// cumulative non-decreasing with a `+Inf` bucket equal to `_count`.
///
/// # Errors
///
/// A description of the first violation, with its line number.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    let mut types: Vec<(String, String)> = Vec::new(); // (family, kind)
                                                       // Histogram bookkeeping keyed by (family, labels-minus-le).
    struct HistState {
        last_cum: u64,
        inf: Option<u64>,
        count: Option<u64>,
        key: (String, String),
    }
    let mut hists: Vec<HistState> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("line {ln}: bad metric name {name:?} in TYPE"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {ln}: bad TYPE kind {kind:?}"));
            }
            if types.iter().any(|(n, _)| n == name) {
                return Err(format!("line {ln}: duplicate TYPE for {name:?}"));
            }
            types.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {ln}: unknown comment form"));
        }
        let (name, labels, value) =
            parse_sample_line(line).map_err(|e| format!("line {ln}: {e}"))?;
        if !(value.parse::<f64>().is_ok() || matches!(value.as_str(), "+Inf" | "-Inf" | "NaN")) {
            return Err(format!("line {ln}: bad sample value {value:?}"));
        }
        // Resolve the family: histogram series suffixes first, then the
        // name itself.
        let hist_family = ["_bucket", "_count", "_sum"].iter().find_map(|suf| {
            let base = name.strip_suffix(suf)?;
            types
                .iter()
                .find(|(n, k)| n == base && k == "histogram")
                .map(|_| (base.to_string(), *suf))
        });
        match hist_family {
            Some((family, suffix)) => {
                let others: Vec<String> = labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                let key = (family.clone(), others.join(","));
                let idx = match hists.iter().position(|h| h.key == key) {
                    Some(i) => i,
                    None => {
                        hists.push(HistState {
                            last_cum: 0,
                            inf: None,
                            count: None,
                            key,
                        });
                        hists.len() - 1
                    }
                };
                let h = &mut hists[idx];
                match suffix {
                    "_bucket" => {
                        let le = labels
                            .iter()
                            .find(|(k, _)| k == "le")
                            .map(|(_, v)| v.as_str())
                            .ok_or_else(|| format!("line {ln}: _bucket without le label"))?;
                        let cum = value
                            .parse::<u64>()
                            .map_err(|_| format!("line {ln}: non-integer bucket value"))?;
                        if cum < h.last_cum {
                            return Err(format!(
                                "line {ln}: bucket series for {family:?} is not cumulative"
                            ));
                        }
                        h.last_cum = cum;
                        if le == "+Inf" {
                            h.inf = Some(cum);
                        }
                    }
                    "_count" => {
                        h.count = value.parse::<u64>().ok();
                    }
                    _ => {}
                }
            }
            None => {
                if !types.iter().any(|(n, _)| n == &name) {
                    return Err(format!("line {ln}: sample {name:?} has no preceding TYPE"));
                }
            }
        }
    }
    for h in &hists {
        let family = &h.key.0;
        let inf = h
            .inf
            .ok_or_else(|| format!("histogram {family:?} is missing the +Inf bucket"))?;
        if let Some(count) = h.count {
            if count != inf {
                return Err(format!(
                    "histogram {family:?}: _count {count} != +Inf bucket {inf}"
                ));
            }
        }
    }
    Ok(())
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A parsed exposition sample line: metric name, label pairs, value text.
type SampleParts = (String, Vec<(String, String)>, String);

/// Splits `name{labels} value` / `name value` into parts.
fn parse_sample_line(line: &str) -> Result<SampleParts, String> {
    let (head, value) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unclosed label braces".to_string())?;
            if close < brace {
                return Err("mismatched label braces".into());
            }
            let labels = &line[brace + 1..close];
            let value = line[close + 1..].trim();
            return Ok((
                {
                    let name = &line[..brace];
                    if !valid_metric_name(name) {
                        return Err(format!("bad metric name {name:?}"));
                    }
                    name.to_string()
                },
                parse_labels(labels)?,
                value.to_string(),
            ));
        }
        None => {
            let mut it = line.split_whitespace();
            let name = it.next().ok_or_else(|| "empty line".to_string())?;
            let value = it
                .next()
                .ok_or_else(|| "sample without value".to_string())?;
            (name.to_string(), value.to_string())
        }
    };
    if !valid_metric_name(&head) {
        return Err(format!("bad metric name {head:?}"));
    }
    Ok((head, Vec::new(), value))
}

/// Parses `k="v",k2="v2"` with backslash escapes in values.
fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        let start = pos;
        while pos < bytes.len() && bytes[pos] != b'=' {
            pos += 1;
        }
        let key = &s[start..pos];
        if key.is_empty() || !valid_metric_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        if pos >= bytes.len() || bytes.get(pos + 1) != Some(&b'"') {
            return Err("label value is not quoted".into());
        }
        pos += 2; // past ="
        let mut value = String::new();
        loop {
            match bytes.get(pos) {
                None => return Err("unterminated label value".into()),
                Some(b'"') => {
                    pos += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(pos + 1) {
                        Some(b'"') => value.push('"'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err("bad escape in label value".into()),
                    }
                    pos += 2;
                }
                Some(&b) => {
                    value.push(b as char);
                    pos += 1;
                }
            }
        }
        out.push((key.to_string(), value));
        match bytes.get(pos) {
            None => break,
            Some(b',') => pos += 1,
            _ => return Err("expected ',' between labels".into()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::StallProfile;
    use crate::trace::TraceKind;

    fn sample(shard: u32, cycle: u64) -> TelemetrySample {
        TelemetrySample {
            shard,
            cycle,
            received: 10,
            busy: 1,
            delivered_packets: 5,
            delivered_flits: 20,
            injected_flits: 22,
            buffered_flits: 2,
            profile: StallProfile {
                compute_ns: 800,
                wait_ns: 150,
                ingest_ns: 25,
                flush_ns: 25,
            },
            metrics: vec![
                ("packet_latency_count".to_string(), 5),
                ("packet_latency_b3".to_string(), 5),
                ("trace_dropped".to_string(), 0),
            ],
        }
    }

    #[test]
    fn status_reports_shards_gauges_and_quantiles() {
        let hub = ObsHub::new();
        hub.ingest(&sample(0, 1_000));
        hub.ingest(&sample(1, 900));
        hub.set_gauge("restarts", 2);
        let status = hub.status_json();
        let doc = Json::parse(&status).expect("valid JSON");
        let shards = doc.get("shards").and_then(Json::as_array).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].get("shard").unwrap().as_f64(), Some(0.0));
        assert_eq!(shards[0].get("cycle").unwrap().as_f64(), Some(1_000.0));
        assert_eq!(
            doc.get("gauges").unwrap().get("restarts").unwrap().as_f64(),
            Some(2.0)
        );
        let p50 = doc.get("latency").unwrap().get("p50").unwrap().as_f64();
        assert!((8.0..16.0).contains(&p50.unwrap()), "p50 {p50:?}");
        assert!(doc.get("load_imbalance").is_some());
    }

    #[test]
    fn prometheus_output_passes_the_linter() {
        let hub = ObsHub::new();
        hub.ingest(&sample(0, 1_000));
        hub.ingest(&sample(1, 950));
        hub.set_gauge("committed_cycle", 500);
        let text = hub.prometheus();
        lint_prometheus(&text).expect("exposition lints clean");
        assert!(text.contains("hornet_up 1"));
        assert!(text.contains("hornet_shard_cycle{shard=\"0\"} 1000"));
        assert!(text.contains("# TYPE hornet_packet_latency histogram"));
        assert!(text.contains("hornet_packet_latency_bucket{le=\"+Inf\"} 10"));
        assert!(text.contains("hornet_packet_latency_count 10"));
        assert!(text.contains("hornet_packet_latency_p95"));
        assert!(text.contains("hornet_committed_cycle 500"));
    }

    #[test]
    fn linter_rejects_malformed_documents() {
        assert!(lint_prometheus("no_type_decl 1\n").is_err());
        assert!(lint_prometheus("# TYPE x bogus\nx 1\n").is_err());
        assert!(lint_prometheus("# TYPE x gauge\n9bad 1\n").is_err());
        assert!(
            lint_prometheus("# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n")
                .is_err(),
            "non-cumulative buckets"
        );
        assert!(
            lint_prometheus("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n").is_err(),
            "missing +Inf bucket"
        );
        assert!(lint_prometheus(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"
        )
        .is_ok());
    }

    #[test]
    fn trace_buffer_pages_by_cycle_and_counts_drops() {
        let hub = ObsHub::with_capacity(16, 2);
        for cycle in [10u64, 20, 30] {
            hub.record_trace(TraceEvent {
                cycle,
                node: u32::MAX,
                kind: TraceKind::Rollback,
                a: 0,
                b: 0,
            });
        }
        // Capacity 2: the cycle-10 event was evicted (drop-oldest).
        let all = hub.trace_jsonl(0);
        assert!(!all.contains("\"cycle\":10"));
        assert!(all.contains("\"cycle\":20") && all.contains("\"cycle\":30"));
        assert!(all.lines().last().unwrap().contains("\"dropped\":1"));
        let paged = hub.trace_jsonl(25);
        assert!(!paged.contains("\"cycle\":20"));
        assert!(paged.contains("\"cycle\":30"));
        assert!(paged.lines().last().unwrap().contains("\"events\":1"));
    }

    #[test]
    fn server_round_trips_over_real_sockets() {
        let hub = Arc::new(ObsHub::new());
        hub.ingest(&sample(0, 42));
        let mut server = ObsServer::spawn("127.0.0.1:0", hub.clone()).expect("bind");
        let addr = server.addr().to_string();
        let (code, body) = http_get(&addr, "/healthz").expect("healthz");
        assert_eq!((code, body.as_str()), (200, "ok\n"));
        let (code, body) = http_get(&addr, "/status").expect("status");
        assert_eq!(code, 200);
        Json::parse(&body).expect("status is valid JSON");
        let (code, body) = http_get(&addr, "/metrics").expect("metrics");
        assert_eq!(code, 200);
        lint_prometheus(&body).expect("scraped exposition lints clean");
        let (code, _) = http_get(&addr, "/nope").expect("404 route");
        assert_eq!(code, 404);
        let (code, _) = http_get(&addr, "/trace?since_cycle=bogus").expect("bad query");
        assert_eq!(code, 400);
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn json_parser_handles_nesting_escapes_and_errors() {
        let doc = Json::parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\"y\n"},"d":null,"e":true}"#).unwrap();
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\"y\n")
        );
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn alerts_endpoint_serializes_firings() {
        crate::log::set_max_level(crate::log::Level::Off);
        let hub = ObsHub::new();
        let mut s = sample(0, 100);
        s.metrics.push(("x".into(), 0));
        s.metrics
            .iter_mut()
            .find(|(n, _)| n == "trace_dropped")
            .unwrap()
            .1 = 9;
        hub.ingest(&s);
        let doc = Json::parse(&hub.alerts_json()).expect("valid JSON");
        assert!(doc.get("total").unwrap().as_f64().unwrap() >= 1.0);
        let firings = doc.get("firings").and_then(Json::as_array).unwrap();
        assert!(firings
            .iter()
            .any(|f| f.get("rule").unwrap().as_str() == Some("trace_drops")));
    }
}
