//! Wall-time stall attribution for the shard driver's cycle loop.
//!
//! `load_imbalance()` says shards diverged; the [`StallProfile`] says *why*:
//! every nanosecond of a driven run is attributed to exactly one of four
//! phases, so per-shard comparisons separate "this shard had more work"
//! (compute) from "this shard waited on a lagging neighbor" (slack-wait)
//! from transport costs (ingest / flush).

/// Wall time of one shard's run, split by phase. All fields in nanoseconds.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StallProfile {
    /// Simulating tiles: posedge/negedge, mailbox delivery, ledger upkeep.
    pub compute_ns: u64,
    /// Parked in the drift gate (slack wait) or a batch rendezvous.
    pub wait_ns: u64,
    /// Draining inbound wire traffic into local staging rings.
    pub ingest_ns: u64,
    /// Publishing outbound flits/credits/progress (transport pump).
    pub flush_ns: u64,
}

impl StallProfile {
    /// Total attributed wall time.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns + self.wait_ns + self.ingest_ns + self.flush_ns
    }

    /// `[compute, wait, ingest, flush]` as fractions of the total (zeros
    /// when nothing was recorded).
    pub fn fractions(&self) -> [f64; 4] {
        let total = self.total_ns();
        if total == 0 {
            return [0.0; 4];
        }
        let t = total as f64;
        [
            self.compute_ns as f64 / t,
            self.wait_ns as f64 / t,
            self.ingest_ns as f64 / t,
            self.flush_ns as f64 / t,
        ]
    }

    /// Accumulates another profile into this one.
    pub fn merge(&mut self, other: &StallProfile) {
        self.compute_ns += other.compute_ns;
        self.wait_ns += other.wait_ns;
        self.ingest_ns += other.ingest_ns;
        self.flush_ns += other.flush_ns;
    }

    /// One-line human rendering, e.g. `compute 62.1% wait 30.0% ingest 3.9% flush 4.0%`.
    pub fn summary(&self) -> String {
        let [c, w, i, f] = self.fractions();
        format!(
            "compute {:.1}% wait {:.1}% ingest {:.1}% flush {:.1}%",
            c * 100.0,
            w * 100.0,
            i * 100.0,
            f * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one_and_merge_accumulates() {
        let mut p = StallProfile {
            compute_ns: 600,
            wait_ns: 300,
            ingest_ns: 50,
            flush_ns: 50,
        };
        let f = p.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.6).abs() < 1e-12);
        p.merge(&p.clone());
        assert_eq!(p.total_ns(), 2000);
        assert_eq!(StallProfile::default().fractions(), [0.0; 4]);
    }
}
