//! The lock-free, shard-local metrics registry and the telemetry samples
//! drawn from it.
//!
//! A [`MetricsRegistry`] maps names to three kinds of instruments:
//!
//! * [`Counter`] — monotone `u64`, relaxed `fetch_add`;
//! * [`Gauge`] — last-written `u64`, relaxed `store`;
//! * [`Histogram`] — 32 log₂-bucketed occurrence counters, relaxed
//!   `fetch_add` on one bucket per recorded value.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes the registry lock
//! once and hands back a cheap cloneable handle; every subsequent update is
//! a single relaxed atomic operation with no lock anywhere, so instruments
//! can sit on simulation hot paths. Handles stay valid for the life of the
//! registry (they share ownership of the slot), so a sampler thread and an
//! updating shard thread never race on anything but the atomics themselves.
//!
//! [`TelemetrySample`] is the unit of periodic observation: the shard
//! driver's fixed progress fields (cycle, flit totals, stall profile) plus a
//! flattened snapshot of the registry. Samples serialize to a fixed
//! little-endian byte layout (for `CtrlMsg::Telemetry` on wire v4) and to
//! one NDJSON object per line (for `hornet-dist --metrics-out`).

use crate::profile::StallProfile;
use std::fmt::Write as _;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Buckets per histogram: value `v` lands in bucket `⌈log₂(v+1)⌉`, capped.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotone counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (relaxed; the sampler tolerates torn inter-metric views).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge handle.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂ histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<[AtomicU64; HISTOGRAM_BUCKETS]>);

impl Histogram {
    /// Records one occurrence of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        let bucket = (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.0[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of all buckets.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0[i].load(Ordering::Relaxed))
    }

    /// Total recorded occurrences.
    pub fn count(&self) -> u64 {
        self.0.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

#[derive(Clone, Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named registry of counters, gauges and histograms.
///
/// Cloning the registry clones the *handle*; all clones share one slot
/// table, so a shard can hand its registry to a sampler without copying.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    slots: Arc<Mutex<Vec<(String, Slot)>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.slots.lock().map(|s| s.len()).unwrap_or(0);
        f.debug_struct("MetricsRegistry")
            .field("slots", &n)
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, mk: impl FnOnce() -> Slot) -> Slot {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        if let Some((_, slot)) = slots.iter().find(|(n, _)| n == name) {
            return slot.clone();
        }
        let slot = mk();
        slots.push((name.to_string(), slot.clone()));
        slot
    }

    /// The counter named `name`, created on first use. Re-registering the
    /// name returns a handle to the *same* counter; asking for a name that
    /// is already a gauge or histogram panics (a misconfigured instrument is
    /// a programming error, not a runtime condition).
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Slot::Counter(Counter(Arc::new(AtomicU64::new(0))))) {
            Slot::Counter(c) => c,
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// The gauge named `name`, created on first use (see [`counter`](Self::counter)).
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Slot::Gauge(Gauge(Arc::new(AtomicU64::new(0))))) {
            Slot::Gauge(g) => g,
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// The histogram named `name`, created on first use (see [`counter`](Self::counter)).
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || {
            Slot::Histogram(Histogram(Arc::new(std::array::from_fn(|_| {
                AtomicU64::new(0)
            }))))
        }) {
            Slot::Histogram(h) => h,
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Flattens every instrument to `(name, u64)` pairs in registration
    /// order: counters and gauges as their value, histograms as
    /// `name_count` plus one `name_b<i>` entry per non-empty bucket.
    pub fn sample(&self) -> Vec<(String, u64)> {
        let slots = self.slots.lock().expect("metrics registry poisoned");
        let mut out = Vec::with_capacity(slots.len());
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => out.push((name.clone(), c.get())),
                Slot::Gauge(g) => out.push((name.clone(), g.get())),
                Slot::Histogram(h) => {
                    let buckets = h.buckets();
                    out.push((format!("{name}_count"), buckets.iter().sum()));
                    for (i, &b) in buckets.iter().enumerate() {
                        if b != 0 {
                            out.push((format!("{name}_b{i}"), b));
                        }
                    }
                }
            }
        }
        out
    }
}

/// One periodic observation of one shard: fixed driver progress fields plus
/// the flattened registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Shard that produced the sample.
    pub shard: u32,
    /// Simulated cycle at sampling time.
    pub cycle: u64,
    /// Cumulative flits moved from boundary mailboxes into ingress buffers.
    pub received: u64,
    /// Flits buffered or pending anywhere in the shard right now.
    pub busy: u64,
    /// Packets delivered by the shard's tiles so far.
    pub delivered_packets: u64,
    /// Flits delivered by the shard's tiles so far.
    pub delivered_flits: u64,
    /// Flits injected by the shard's tiles so far.
    pub injected_flits: u64,
    /// Flits currently buffered in the shard's routers.
    pub buffered_flits: u64,
    /// Wall-time stall attribution accumulated so far this run.
    pub profile: StallProfile,
    /// Flattened registry snapshot (`MetricsRegistry::sample`).
    pub metrics: Vec<(String, u64)>,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn take<'a>(buf: &mut &'a [u8], n: usize) -> io::Result<&'a [u8]> {
    if buf.len() < n {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated observability record",
        ));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

pub(crate) fn get_u32(buf: &mut &[u8]) -> io::Result<u32> {
    Ok(u32::from_le_bytes(take(buf, 4)?.try_into().unwrap()))
}

pub(crate) fn get_u64(buf: &mut &[u8]) -> io::Result<u64> {
    Ok(u64::from_le_bytes(take(buf, 8)?.try_into().unwrap()))
}

impl TelemetrySample {
    /// Serializes the sample to the fixed little-endian wire layout.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.shard);
        put_u64(buf, self.cycle);
        put_u64(buf, self.received);
        put_u64(buf, self.busy);
        put_u64(buf, self.delivered_packets);
        put_u64(buf, self.delivered_flits);
        put_u64(buf, self.injected_flits);
        put_u64(buf, self.buffered_flits);
        put_u64(buf, self.profile.compute_ns);
        put_u64(buf, self.profile.wait_ns);
        put_u64(buf, self.profile.ingest_ns);
        put_u64(buf, self.profile.flush_ns);
        put_u32(buf, self.metrics.len() as u32);
        for (name, v) in &self.metrics {
            put_u32(buf, name.len() as u32);
            buf.extend_from_slice(name.as_bytes());
            put_u64(buf, *v);
        }
    }

    /// Decodes a sample written by [`encode_into`](Self::encode_into),
    /// advancing the cursor.
    ///
    /// # Errors
    ///
    /// `InvalidData` / `UnexpectedEof` on a corrupt or truncated record.
    pub fn decode_from(buf: &mut &[u8]) -> io::Result<Self> {
        let shard = get_u32(buf)?;
        let cycle = get_u64(buf)?;
        let received = get_u64(buf)?;
        let busy = get_u64(buf)?;
        let delivered_packets = get_u64(buf)?;
        let delivered_flits = get_u64(buf)?;
        let injected_flits = get_u64(buf)?;
        let buffered_flits = get_u64(buf)?;
        let profile = StallProfile {
            compute_ns: get_u64(buf)?,
            wait_ns: get_u64(buf)?,
            ingest_ns: get_u64(buf)?,
            flush_ns: get_u64(buf)?,
        };
        let n = get_u32(buf)? as usize;
        let mut metrics = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let len = get_u32(buf)? as usize;
            let name = std::str::from_utf8(take(buf, len)?)
                .map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "metric name is not UTF-8")
                })?
                .to_string();
            let v = get_u64(buf)?;
            metrics.push((name, v));
        }
        Ok(Self {
            shard,
            cycle,
            received,
            busy,
            delivered_packets,
            delivered_flits,
            injected_flits,
            buffered_flits,
            profile,
            metrics,
        })
    }

    /// Renders the sample as one NDJSON object (no trailing newline). The
    /// fixed keys below form the schema `validate_ndjson_line` checks.
    pub fn to_ndjson(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"shard\":{},\"cycle\":{},\"received\":{},\"busy\":{},\
             \"delivered_packets\":{},\"delivered_flits\":{},\"injected_flits\":{},\
             \"buffered_flits\":{},\"compute_ns\":{},\"wait_ns\":{},\"ingest_ns\":{},\
             \"flush_ns\":{},\"metrics\":{{",
            self.shard,
            self.cycle,
            self.received,
            self.busy,
            self.delivered_packets,
            self.delivered_flits,
            self.injected_flits,
            self.buffered_flits,
            self.profile.compute_ns,
            self.profile.wait_ns,
            self.profile.ingest_ns,
            self.profile.flush_ns,
        );
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", escape_json(name), v);
        }
        s.push_str("}}");
        s
    }

    /// Checks one `--metrics-out` NDJSON line against the sample schema:
    /// object braces, every fixed key present, each fixed key followed by a
    /// numeric value. Returns a description of the first violation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the schema violation.
    pub fn validate_ndjson_line(line: &str) -> Result<(), String> {
        let line = line.trim();
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err("line is not a JSON object".into());
        }
        const KEYS: [&str; 12] = [
            "shard",
            "cycle",
            "received",
            "busy",
            "delivered_packets",
            "delivered_flits",
            "injected_flits",
            "buffered_flits",
            "compute_ns",
            "wait_ns",
            "ingest_ns",
            "flush_ns",
        ];
        for key in KEYS {
            let pat = format!("\"{key}\":");
            let Some(at) = line.find(&pat) else {
                return Err(format!("missing key {key:?}"));
            };
            let rest = &line[at + pat.len()..];
            if !rest.starts_with(|c: char| c.is_ascii_digit()) {
                return Err(format!("key {key:?} has a non-numeric value"));
            }
        }
        if !line.contains("\"metrics\":{") {
            return Err("missing key \"metrics\"".into());
        }
        Ok(())
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_across_handles_and_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("flits");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = reg.counter("flits");
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
        assert_eq!(reg.sample(), vec![("flits".to_string(), 40_000)]);
    }

    #[test]
    fn histogram_buckets_by_log2_and_flattens_sparsely() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wait");
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(1);
        h.record(1000); // bucket 10
        assert_eq!(h.count(), 4);
        let sample = reg.sample();
        assert_eq!(sample[0], ("wait_count".to_string(), 4));
        assert!(sample.contains(&("wait_b0".to_string(), 1)));
        assert!(sample.contains(&("wait_b1".to_string(), 2)));
        assert!(sample.contains(&("wait_b10".to_string(), 1)));
        assert_eq!(sample.len(), 4, "empty buckets are omitted");
    }

    #[test]
    fn gauge_overwrites() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("cycle");
        g.set(10);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.gauge("x");
        let _ = reg.counter("x");
    }

    #[test]
    fn sample_round_trips_and_emits_valid_ndjson() {
        let s = TelemetrySample {
            shard: 3,
            cycle: 12_000,
            received: 42,
            busy: 7,
            delivered_packets: 100,
            delivered_flits: 400,
            injected_flits: 410,
            buffered_flits: 9,
            profile: StallProfile {
                compute_ns: 1,
                wait_ns: 2,
                ingest_ns: 3,
                flush_ns: 4,
            },
            metrics: vec![("batch_wait_count".into(), 5)],
        };
        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        let back = TelemetrySample::decode_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, s);
        let line = s.to_ndjson();
        TelemetrySample::validate_ndjson_line(&line).expect("schema-valid line");
        assert!(TelemetrySample::validate_ndjson_line("{\"shard\":1}").is_err());
        assert!(TelemetrySample::validate_ndjson_line("not json").is_err());
    }
}
