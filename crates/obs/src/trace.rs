//! Cycle-stamped structured event tracing.
//!
//! Simulation and runtime layers record fixed-size [`TraceEvent`]s into
//! fixed-capacity [`TraceRing`]s: one ring per tile for the deterministic
//! flit lifecycle (inject → route → eject), one ring per shard (and one on
//! the coordinator) for runtime events — slack waits, checkpoint
//! capture/commit, worker loss/rollback/respawn.
//!
//! # Cost model
//!
//! * **Compiled out**: build with `RUSTFLAGS="--cfg hornet_trace_off"` and
//!   [`record`](TraceRing::record) constant-folds to nothing everywhere.
//! * **Compiled in, disabled** (the default): a site with no ring attached
//!   pays one `Option` branch; a disabled ring pays one boolean load.
//!   Recording never allocates — the ring's buffer is reserved up front.
//! * **Enabled**: one bounds check and a 40-byte copy per event.
//!
//! # Truncation contract
//!
//! A full ring drops *new* events (keeping the earliest, which is the
//! deterministic choice — what is retained depends only on the event
//! sequence, not on timing) and counts every drop. Exporters always emit
//! the drop counter, so truncation can lose events but never the fact that
//! events were lost.
//!
//! # Determinism
//!
//! In cycle-accurate mode the per-tile event sequence (including which
//! events a full ring drops) is a pure function of the workload, so tile
//! rings are bit-identical across the sequential, thread-shard and
//! multi-process backends. Runtime events (waits, checkpoints, recoveries)
//! are host-timing-dependent by nature and live in separate rings;
//! [`TraceDump::flit_events`] selects the deterministic subset.

use crate::metrics::{escape_json, get_u32, get_u64, take};
use std::fmt::Write as _;
use std::io;

/// Master compile-time switch: `false` when built with
/// `--cfg hornet_trace_off`, which folds every record site to a no-op.
pub const COMPILED_IN: bool = !cfg!(hornet_trace_off);

/// What happened. The meaning of [`TraceEvent::a`] / [`TraceEvent::b`]
/// depends on the kind; see each variant.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceKind {
    /// A flit entered the network at `node`: `a` = packet id, `b` = flit seq.
    FlitInject = 0,
    /// A head flit was route-computed at `node`: `a` = packet id,
    /// `b` = chosen egress port.
    FlitRoute = 1,
    /// A flit was delivered to the local agent at `node`: `a` = packet id,
    /// `b` = flit seq.
    FlitEject = 2,
    /// Shard `node` started waiting for neighbors to reach floor `a`.
    SlackWaitBegin = 3,
    /// Shard `node` resumed: `a` = nanoseconds waited, `b` = the floor.
    SlackWaitEnd = 4,
    /// Shard `node` captured a checkpoint: `a` = serialized bytes.
    CheckpointCapture = 5,
    /// The coordinator committed a consistent checkpoint cut: `a` = total
    /// bytes across shards.
    CheckpointCommit = 6,
    /// The coordinator lost worker `node`: `a` = restarts used so far.
    WorkerLost = 7,
    /// The coordinator rolled the run back to cycle `cycle` (node is the
    /// sentinel `u32::MAX`: the rollback is global).
    Rollback = 8,
    /// The coordinator respawned the workers: `a` = attempt number.
    Respawn = 9,
}

impl TraceKind {
    /// All kinds, in tag order.
    pub const ALL: [TraceKind; 10] = [
        TraceKind::FlitInject,
        TraceKind::FlitRoute,
        TraceKind::FlitEject,
        TraceKind::SlackWaitBegin,
        TraceKind::SlackWaitEnd,
        TraceKind::CheckpointCapture,
        TraceKind::CheckpointCommit,
        TraceKind::WorkerLost,
        TraceKind::Rollback,
        TraceKind::Respawn,
    ];

    /// Stable snake_case name (JSONL `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::FlitInject => "flit_inject",
            TraceKind::FlitRoute => "flit_route",
            TraceKind::FlitEject => "flit_eject",
            TraceKind::SlackWaitBegin => "slack_wait_begin",
            TraceKind::SlackWaitEnd => "slack_wait_end",
            TraceKind::CheckpointCapture => "checkpoint_capture",
            TraceKind::CheckpointCommit => "checkpoint_commit",
            TraceKind::WorkerLost => "worker_lost",
            TraceKind::Rollback => "rollback",
            TraceKind::Respawn => "respawn",
        }
    }

    /// True for the deterministic flit-lifecycle kinds recorded by tiles
    /// (the bit-identity subset).
    pub fn is_flit(self) -> bool {
        matches!(
            self,
            TraceKind::FlitInject | TraceKind::FlitRoute | TraceKind::FlitEject
        )
    }

    fn from_tag(tag: u8) -> io::Result<Self> {
        TraceKind::ALL
            .get(tag as usize)
            .copied()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad trace-event kind"))
    }
}

/// One recorded event: fixed-size, `Copy`, allocation-free to record.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event is stamped with.
    pub cycle: u64,
    /// Tile id for flit events, shard id for runtime events
    /// (`u32::MAX` = whole run).
    pub node: u32,
    /// Event kind (fixes the meaning of `a` and `b`).
    pub kind: TraceKind,
    /// First kind-specific operand.
    pub a: u64,
    /// Second kind-specific operand.
    pub b: u64,
}

/// A fixed-capacity, drop-newest event ring with a drop counter.
#[derive(Clone, Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
    enabled: bool,
}

impl TraceRing {
    /// Creates an enabled ring holding at most `capacity` events. The
    /// buffer is reserved up front so recording never allocates.
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(if COMPILED_IN { capacity } else { 0 }),
            cap: capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// Runtime switch; a disabled ring records (and drops) nothing.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the ring currently records.
    pub fn enabled(&self) -> bool {
        COMPILED_IN && self.enabled
    }

    /// Records one event (drops it, counted, when the ring is full).
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if !COMPILED_IN || !self.enabled {
            return;
        }
        if self.buf.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.buf.push(ev);
    }

    /// The retained events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.buf
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Empties the ring and resets the drop counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }

    /// Moves the ring's contents into a dump, leaving it empty.
    pub fn drain_into(&mut self, dump: &mut TraceDump) {
        dump.events.append(&mut self.buf);
        dump.dropped += self.dropped;
        self.dropped = 0;
    }
}

/// A collection of drained rings: the unit of export and wire transfer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceDump {
    /// The retained events.
    pub events: Vec<TraceEvent>,
    /// Total events dropped by the contributing rings.
    pub dropped: u64,
}

impl TraceDump {
    /// Merges another dump into this one.
    pub fn merge(&mut self, mut other: TraceDump) {
        self.events.append(&mut other.events);
        self.dropped += other.dropped;
    }

    /// Stably reorders events by node id, preserving each node's recording
    /// order — the canonical form in which any per-node-contiguous
    /// collection (sequential tiles, shard-concatenated tiles) compares
    /// equal.
    pub fn canonicalize(&mut self) {
        self.events.sort_by_key(|e| e.node);
    }

    /// The deterministic flit-lifecycle subset, canonically ordered.
    pub fn flit_events(&self) -> TraceDump {
        let mut out = TraceDump {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.kind.is_flit())
                .collect(),
            dropped: self.dropped,
        };
        out.canonicalize();
        out
    }

    /// Serializes the dump to the fixed little-endian wire layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.events.len() * 29);
        buf.extend_from_slice(&self.dropped.to_le_bytes());
        buf.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for e in &self.events {
            buf.extend_from_slice(&e.cycle.to_le_bytes());
            buf.extend_from_slice(&e.node.to_le_bytes());
            buf.push(e.kind as u8);
            buf.extend_from_slice(&e.a.to_le_bytes());
            buf.extend_from_slice(&e.b.to_le_bytes());
        }
        buf
    }

    /// Decodes a dump written by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// `InvalidData` / `UnexpectedEof` on a corrupt or truncated dump.
    pub fn decode(mut buf: &[u8]) -> io::Result<Self> {
        let buf = &mut buf;
        let dropped = get_u64(buf)?;
        let count = get_u32(buf)? as usize;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            events.push(TraceEvent {
                cycle: get_u64(buf)?,
                node: get_u32(buf)?,
                kind: TraceKind::from_tag(take(buf, 1)?[0])?,
                a: get_u64(buf)?,
                b: get_u64(buf)?,
            });
        }
        Ok(Self { events, dropped })
    }

    /// Exports as JSONL: one object per event, terminated by one summary
    /// object carrying the drop counter. The summary line is emitted
    /// *unconditionally* — truncation never silently reads as "complete".
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 64);
        for e in &self.events {
            let _ = writeln!(
                out,
                "{{\"cycle\":{},\"node\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                e.cycle,
                e.node,
                e.kind.name(),
                e.a,
                e.b
            );
        }
        let _ = writeln!(
            out,
            "{{\"events\":{},\"dropped\":{}}}",
            self.events.len(),
            self.dropped
        );
        out
    }

    /// Exports as Chrome `trace_event` JSON (load in perfetto, speedscope
    /// or `chrome://tracing`). Timestamps are the simulated cycle (as µs of
    /// virtual time); flit events render as instants on `tile-N` tracks,
    /// runtime events on `shard-N` / `run` tracks, with waits and
    /// checkpoint captures as duration slices (their recorded wall
    /// nanoseconds as the slice length).
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let tid: String = if e.kind.is_flit() {
                format!("tile-{}", e.node)
            } else if e.node == u32::MAX {
                "run".to_string()
            } else {
                format!("shard-{}", e.node)
            };
            match e.kind {
                TraceKind::SlackWaitEnd | TraceKind::CheckpointCapture => {
                    let dur_us = (e.a as f64 / 1000.0).max(0.001);
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{:.3},\"pid\":0,\
                         \"tid\":\"{}\",\"args\":{{\"a\":{},\"b\":{}}}}}",
                        escape_json(e.kind.name()),
                        e.cycle,
                        dur_us,
                        escape_json(&tid),
                        e.a,
                        e.b
                    );
                }
                _ => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":0,\
                         \"tid\":\"{}\",\"args\":{{\"a\":{},\"b\":{}}}}}",
                        escape_json(e.kind.name()),
                        e.cycle,
                        escape_json(&tid),
                        e.a,
                        e.b
                    );
                }
            }
        }
        let _ = write!(
            out,
            "],\"otherData\":{{\"dropped\":{},\"events\":{}}}}}",
            self.dropped,
            self.events.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, node: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            node,
            kind,
            a: 7,
            b: 9,
        }
    }

    #[test]
    fn ring_drops_newest_and_counts() {
        let mut ring = TraceRing::new(2);
        ring.record(ev(1, 0, TraceKind::FlitInject));
        ring.record(ev(2, 0, TraceKind::FlitRoute));
        ring.record(ev(3, 0, TraceKind::FlitEject));
        assert_eq!(ring.events().len(), 2);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.events()[0].cycle, 1, "earliest events are retained");
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = TraceRing::new(8);
        ring.set_enabled(false);
        ring.record(ev(1, 0, TraceKind::FlitInject));
        assert!(ring.events().is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn dump_round_trips_and_canonicalizes_stably() {
        let mut ring_a = TraceRing::new(4);
        let mut ring_b = TraceRing::new(4);
        ring_b.record(ev(5, 2, TraceKind::FlitInject));
        ring_b.record(ev(6, 2, TraceKind::FlitEject));
        ring_a.record(ev(1, 1, TraceKind::SlackWaitEnd));
        let mut dump = TraceDump::default();
        ring_b.drain_into(&mut dump);
        ring_a.drain_into(&mut dump);
        dump.dropped += 3;
        dump.canonicalize();
        assert_eq!(dump.events[0].node, 1);
        assert_eq!(dump.events[1].cycle, 5, "per-node order preserved");
        assert_eq!(dump.events[2].cycle, 6);
        let back = TraceDump::decode(&dump.encode()).unwrap();
        assert_eq!(back, dump);
        assert!(TraceDump::decode(&dump.encode()[..5]).is_err());
    }

    #[test]
    fn exports_always_carry_the_drop_counter() {
        let dump = TraceDump {
            events: vec![ev(10, 3, TraceKind::FlitRoute)],
            dropped: 42,
        };
        let jsonl = dump.to_jsonl();
        assert!(jsonl.lines().last().unwrap().contains("\"dropped\":42"));
        assert!(jsonl.contains("\"kind\":\"flit_route\""));
        let chrome = dump.to_chrome_trace();
        assert!(chrome.contains("\"dropped\":42"));
        assert!(chrome.contains("\"tid\":\"tile-3\""));
        assert!(chrome.starts_with('{') && chrome.ends_with('}'));
    }

    #[test]
    fn flit_subset_excludes_runtime_events() {
        let dump = TraceDump {
            events: vec![
                ev(1, 0, TraceKind::SlackWaitBegin),
                ev(2, 1, TraceKind::FlitInject),
                ev(3, 0, TraceKind::Respawn),
            ],
            dropped: 0,
        };
        let flits = dump.flit_events();
        assert_eq!(flits.events.len(), 1);
        assert_eq!(flits.events[0].kind, TraceKind::FlitInject);
    }
}
