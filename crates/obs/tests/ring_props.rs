//! Property-based tests of the trace ring's truncation contract: whatever
//! the capacity and push sequence, retained + dropped always accounts for
//! every recorded event, and every export carries the drop counter — ring
//! truncation can lose events, never the fact that events were lost.

use hornet_obs::trace::{TraceDump, TraceEvent, TraceKind, TraceRing};
use proptest::prelude::*;

fn event(i: u64) -> TraceEvent {
    TraceEvent {
        cycle: i,
        node: (i % 7) as u32,
        kind: TraceKind::ALL[(i % TraceKind::ALL.len() as u64) as usize],
        a: i.wrapping_mul(31),
        b: i ^ 0x5555,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Retained + dropped == pushed, retention is the earliest prefix, and
    /// both exporters emit the exact drop count even when the ring is full.
    #[test]
    fn truncation_never_drops_the_drop_counter(
        capacity in 0usize..48,
        pushes in 0u64..200,
    ) {
        let mut ring = TraceRing::new(capacity);
        for i in 0..pushes {
            ring.record(event(i));
        }
        let retained = ring.events().len() as u64;
        prop_assert!(retained <= capacity as u64);
        prop_assert_eq!(retained + ring.dropped(), pushes, "every push is accounted for");
        // Drop-newest: the retained events are exactly the earliest prefix.
        for (i, e) in ring.events().iter().enumerate() {
            prop_assert_eq!(e, &event(i as u64));
        }

        let mut dump = TraceDump::default();
        ring.drain_into(&mut dump);
        prop_assert_eq!(dump.dropped, pushes.saturating_sub(retained));

        // The wire round trip preserves the counter bit-exactly.
        let back = TraceDump::decode(&dump.encode()).unwrap();
        prop_assert_eq!(&back, &dump);

        // Both exports state the drop count, unconditionally.
        let jsonl = dump.to_jsonl();
        let last = jsonl.lines().last().expect("summary line");
        prop_assert!(last.contains(&format!("\"dropped\":{}", dump.dropped)));
        prop_assert_eq!(jsonl.lines().count() as u64, retained + 1);
        let chrome = dump.to_chrome_trace();
        prop_assert!(chrome.contains(&format!("\"dropped\":{}", dump.dropped)));
    }

    /// Draining a ring resets it: a reused ring never double-counts.
    #[test]
    fn drain_resets_the_ring(capacity in 1usize..16, pushes in 0u64..64) {
        let mut ring = TraceRing::new(capacity);
        for i in 0..pushes {
            ring.record(event(i));
        }
        let mut dump = TraceDump::default();
        ring.drain_into(&mut dump);
        prop_assert_eq!(ring.events().len(), 0);
        prop_assert_eq!(ring.dropped(), 0);
        ring.record(event(0));
        prop_assert_eq!(ring.events().len(), 1);
    }
}
