//! Integration tests of the embedded live-introspection server: a real
//! `ObsServer` over a real TCP socket, fed by a producer thread while
//! several scraper threads hammer every endpoint — the concurrent-access
//! pattern a run with `--http` actually sees. Also pins down the payload
//! contracts: `/metrics` passes the Prometheus exposition linter, `/status`
//! satisfies the documented JSON schema, and `/trace?since_cycle=N` pages
//! by cycle.

use hornet_obs::metrics::TelemetrySample;
use hornet_obs::profile::StallProfile;
use hornet_obs::serve::{http_get, lint_prometheus, Json, ObsHub, ObsServer};
use hornet_obs::trace::{TraceEvent, TraceKind};
use std::sync::Arc;

/// A plausible shard sample at `cycle`, with a registry-flattened
/// `packet_latency` log₂ histogram riding in the metrics pairs.
fn sample(shard: u32, cycle: u64) -> TelemetrySample {
    TelemetrySample {
        shard,
        cycle,
        received: cycle * 2,
        busy: 7,
        delivered_packets: cycle / 2,
        delivered_flits: cycle * 2,
        injected_flits: cycle * 2 + 7,
        buffered_flits: 7,
        profile: StallProfile {
            compute_ns: 80_000 + u64::from(shard) * 1_000,
            wait_ns: 15_000,
            ingest_ns: 3_000,
            flush_ns: 2_000,
        },
        metrics: vec![
            ("packet_latency_count".to_string(), cycle / 2),
            ("packet_latency_b3".to_string(), cycle / 4),
            ("packet_latency_b4".to_string(), cycle / 2 - cycle / 4),
            ("trace_dropped".to_string(), 0),
            ("router_xbar_grants".to_string(), cycle * 3),
        ],
    }
}

#[test]
fn concurrent_scrapes_during_ingest_stay_well_formed() {
    let hub = Arc::new(ObsHub::new());
    hub.set_gauge("shards", 2);
    let mut server = ObsServer::spawn("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
    let addr = server.addr().to_string();

    // Producer: streams samples and trace events into the hub, exactly like
    // a coordinator absorbing telemetry mid-run.
    let producer = {
        let hub = Arc::clone(&hub);
        std::thread::spawn(move || {
            for cycle in (100..5_000u64).step_by(100) {
                for shard in 0..2u32 {
                    hub.ingest(&sample(shard, cycle));
                }
                hub.record_trace(TraceEvent {
                    cycle,
                    node: 0,
                    kind: TraceKind::FlitInject,
                    a: cycle,
                    b: 0,
                });
            }
        })
    };

    // Scrapers: every endpoint, in parallel, while the producer writes.
    let scrapers: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    let (code, body) = http_get(&addr, "/status").expect("status");
                    assert_eq!(code, 200);
                    Json::parse(&body).expect("status parses");
                    let (code, body) = http_get(&addr, "/metrics").expect("metrics");
                    assert_eq!(code, 200);
                    lint_prometheus(&body).expect("exposition lints clean");
                    let (code, _) =
                        http_get(&addr, &format!("/trace?since_cycle={}", i * 500)).expect("trace");
                    assert_eq!(code, 200);
                    let (code, body) = http_get(&addr, "/healthz").expect("healthz");
                    assert_eq!(code, 200);
                    assert_eq!(body, "ok\n");
                }
            })
        })
        .collect();

    producer.join().expect("producer");
    for s in scrapers {
        s.join().expect("scraper");
    }
    server.shutdown();
}

#[test]
fn status_schema_carries_shards_rates_and_quantiles() {
    let hub = Arc::new(ObsHub::new());
    for cycle in [1_000u64, 2_000, 3_000] {
        hub.ingest(&sample(0, cycle));
        hub.ingest(&sample(1, cycle));
    }
    let mut server = ObsServer::spawn("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
    let (code, body) = http_get(&server.addr().to_string(), "/status").expect("status");
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("valid JSON");

    let shards = doc
        .get("shards")
        .and_then(Json::as_array)
        .expect("shards array");
    assert_eq!(shards.len(), 2, "one row per reporting shard");
    for row in shards {
        for key in [
            "shard",
            "cycle",
            "age_ms",
            "received",
            "busy",
            "delivered_packets",
            "delivered_flits",
            "injected_flits",
            "buffered_flits",
        ] {
            assert!(
                row.get(key).and_then(Json::as_f64).is_some(),
                "shard row carries numeric {key}: {body}"
            );
        }
        let stall = row.get("stall").expect("stall breakdown");
        for phase in ["compute", "wait", "ingest", "flush"] {
            assert!(stall.get(phase).and_then(Json::as_f64).is_some());
        }
    }
    assert_eq!(
        shards[0].get("cycle").and_then(Json::as_f64),
        Some(3_000.0),
        "latest sample wins"
    );

    // Merged latency quantiles recovered from the per-shard histograms: all
    // mass sits in buckets 3 and 4, so every quantile lands in [8, 32).
    let lat = doc.get("latency").expect("latency summary");
    for q in ["p50", "p95", "p99"] {
        let v = lat.get(q).and_then(Json::as_f64).expect("quantile");
        assert!((8.0..32.0).contains(&v), "{q} = {v} outside the mass");
    }
    let imb = doc
        .get("load_imbalance")
        .and_then(Json::as_f64)
        .expect("imbalance with two shards");
    assert!((1.0..1.1).contains(&imb), "near-balanced: {imb}");
    assert!(
        doc.get("alerts")
            .and_then(|a| a.get("total"))
            .and_then(Json::as_f64)
            .is_some(),
        "alert counters"
    );
    server.shutdown();
}

#[test]
fn trace_paging_by_since_cycle() {
    let hub = Arc::new(ObsHub::new());
    for cycle in 1..=50u64 {
        hub.record_trace(TraceEvent {
            cycle: cycle * 10,
            node: 1,
            kind: TraceKind::FlitRoute,
            a: cycle,
            b: 2,
        });
    }
    let mut server = ObsServer::spawn("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
    let addr = server.addr().to_string();

    let page = |since: u64| -> (usize, String) {
        let (code, body) = http_get(&addr, &format!("/trace?since_cycle={since}")).expect("trace");
        assert_eq!(code, 200);
        // Last line is the unconditional {"events":N,"dropped":N} summary.
        (body.lines().count() - 1, body)
    };
    let (all, _) = page(0);
    assert_eq!(all, 50);
    let (tail, body) = page(251);
    assert_eq!(tail, 25, "cycles 260..=500: {body}");
    assert!(body.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    let (none, body) = page(10_000);
    assert_eq!(none, 0);
    assert!(body.starts_with("{\"events\":"), "summary only: {body}");

    let (code, _) = http_get(&addr, "/trace?since_cycle=nonsense").expect("connects");
    assert_eq!(code, 400, "unparsable cursor is a client error");
    server.shutdown();
}

#[test]
fn metrics_exposition_covers_shards_histograms_and_gauges() {
    let hub = Arc::new(ObsHub::new());
    hub.set_gauge("restarts", 3);
    hub.set_gauge("shards", 2);
    hub.ingest(&sample(0, 4_000));
    hub.ingest(&sample(1, 4_000));
    let mut server = ObsServer::spawn("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
    let (code, body) = http_get(&server.addr().to_string(), "/metrics").expect("metrics");
    assert_eq!(code, 200);
    lint_prometheus(&body).expect("exposition lints clean");
    for needle in [
        "hornet_up 1",
        "hornet_restarts 3",
        "hornet_shard_cycle{shard=\"1\"} 4000",
        "hornet_shard_stall_seconds{shard=\"0\",phase=\"wait\"}",
        "hornet_packet_latency_bucket{le=\"+Inf\"}",
        "hornet_packet_latency_count",
        "hornet_m_router_xbar_grants{shard=\"0\"}",
        "hornet_packet_latency_p95",
    ] {
        assert!(body.contains(needle), "missing {needle} in:\n{body}");
    }
    server.shutdown();
}
