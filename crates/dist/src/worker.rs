//! The worker side of the distributed backend: a transport-generic shard
//! loop, and the process entry point that speaks the control protocol.
//!
//! The shard loop is the same conservative algorithm as the thread backend's
//! (`hornet_shard::runtime`), expressed over [`BoundaryTransport`]s instead
//! of shared atomics: before simulating cycle `c`, wait until every
//! neighbor's published progress reaches `c - 1 - slack`, ingest what the
//! transports delivered, consume mailboxes (strictly by cycle stamp in
//! CycleAccurate mode), simulate the two clock edges, emit credits, publish
//! the termination ledger, and pump the transports. Directives (stop /
//! fast-forward jumps) arrive from the coordinator through plain atomics the
//! control reader thread maintains.

use crate::protocol::{hello, CtrlMsg, TransportKind};
use crate::shm::{ShmSegment, ShmTransport};
use crate::spec::{DistSpec, RunKind};
use crate::transport::{BoundaryTransport, SocketTransport, Stream};
use crate::wire::{read_frame, write_frame};
use crate::wiring::{build_shards, partition_for, ShardParts};
use hornet_net::boundary::{BoundaryLink, BoundaryRx};
use hornet_net::ids::Cycle;
use hornet_net::network::NetworkNode;
use hornet_net::stats::NetworkStats;
use hornet_shard::termination::{LedgerState, ShardLedger};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The control-plane shared state between the shard loop and the control
/// reader thread.
#[derive(Clone)]
pub struct WorkerControl {
    /// This shard's published termination ledger.
    pub ledger: Arc<ShardLedger>,
    /// Stop directive (completion declared, or coordinator lost).
    pub stop: Arc<AtomicBool>,
    /// Monotone fast-forward target.
    pub skip_to: Arc<AtomicU64>,
}

impl Default for WorkerControl {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerControl {
    /// Fresh control state.
    pub fn new() -> Self {
        Self {
            ledger: Arc::new(ShardLedger::new()),
            stop: Arc::new(AtomicBool::new(false)),
            skip_to: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// Result of one shard's run.
pub struct WorkerOutcome {
    /// The cycle the shard stopped at.
    pub final_now: Cycle,
    /// Statistics merged over this shard's tiles.
    pub stats: NetworkStats,
    /// Every local agent finished and the shard drained.
    pub completed: bool,
    /// The tiles (for in-process callers that want to inspect them).
    pub tiles: Vec<NetworkNode>,
}

/// One shard's execution state, generic over the boundary transport.
pub struct ShardWorker {
    /// The shard index (for diagnostics).
    pub shard: usize,
    /// The shard's tiles.
    pub tiles: Vec<NetworkNode>,
    /// All outbound boundary halves.
    pub outbound: Vec<Arc<BoundaryLink>>,
    /// All inbound receiver endpoints.
    pub inbound: Vec<BoundaryRx>,
    /// One transport per neighboring shard (attach in
    /// [`transports_plan`](Self::transports_plan) order).
    pub transports: Vec<Box<dyn BoundaryTransport>>,
    /// Per-neighbor channel wiring, canonical order.
    neighbors_meta: Vec<crate::wiring::NeighborWiring>,
    /// Maximum cycles to run ahead of neighbors.
    pub slack: u64,
    /// Cycles between drift checks.
    pub quantum: u64,
    /// Strict cycle-stamped mailbox consumption (bit-exact mode).
    pub strict: bool,
    /// Publish ledgers / honor skip directives.
    pub track_ledger: bool,
    /// Compute next-event info for fast-forward.
    pub fast_forward: bool,
    /// Control-plane state.
    pub control: WorkerControl,
}

impl ShardWorker {
    /// Builds a worker from wiring parts and the spec's synchronization
    /// parameters (transports attached separately).
    pub fn from_parts(parts: ShardParts, spec: &DistSpec, control: WorkerControl) -> Self {
        let (slack, quantum, strict) = spec.sync.params();
        Self {
            shard: parts.shard,
            tiles: parts.tiles,
            outbound: parts.outbound,
            inbound: parts.inbound,
            transports: Vec::new(),
            neighbors_meta: parts.neighbors,
            slack,
            quantum,
            strict,
            track_ledger: spec.needs_detector(),
            fast_forward: spec.fast_forward,
            control,
        }
    }

    fn wait_peers(&self, floor: Cycle) -> bool {
        for (ti, t) in self.transports.iter().enumerate() {
            let mut spins = 0u32;
            let mut reported = false;
            while t.peer_progress() < floor {
                if self.control.stop.load(Ordering::Acquire) {
                    return false;
                }
                if spins > 40_000 && !reported {
                    // Several seconds without peer progress: likely a stall;
                    // report once (diagnostics only, normal runs never hit it).
                    reported = true;
                    eprintln!(
                        "[w{}] stalled waiting transport#{ti} floor={floor} mirror={} mirrors={:?}",
                        self.shard,
                        t.peer_progress(),
                        self.transports
                            .iter()
                            .map(|x| x.peer_progress())
                            .collect::<Vec<_>>()
                    );
                }
                // Escalating backoff: spin briefly, then yield, then sleep.
                // Co-scheduled worker processes (more shards than cores)
                // starve each other with pure spinning — the peer needs the
                // CPU this loop is burning.
                spins = spins.saturating_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else if spins < 256 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros((spins as u64 - 255).min(20) * 10));
                }
            }
        }
        true
    }

    fn pump_all(&mut self, cycle: Cycle) -> io::Result<()> {
        for t in &mut self.transports {
            t.pump(cycle)?;
        }
        Ok(())
    }

    fn busy_now(&self) -> u64 {
        self.tiles
            .iter()
            .map(|t| t.buffered_flits() as u64 + u64::from(!t.is_idle()))
            .sum::<u64>()
            + self
                .inbound
                .iter()
                .map(|rx| rx.in_flight() as u64)
                .sum::<u64>()
    }

    /// Runs the shard for `cycles` cycles starting after `start`.
    pub fn run(mut self, start: Cycle, cycles: Cycle) -> io::Result<WorkerOutcome> {
        let end = start + cycles;
        let quantum = self.quantum.max(1);
        let mut now = start;
        let mut recv_total = 0u64;
        let mut last_published = LedgerState::default();
        let mut published_once = false;

        let debug_stall = std::env::var_os("HORNET_DIST_DEBUG").is_some();
        'run: while now < end {
            if self.control.stop.load(Ordering::Acquire) {
                break;
            }
            let batch_end = (now + quantum).min(end);
            if debug_stall && now.is_multiple_of(100) {
                eprintln!(
                    "[w{}] cycle {now} peers={:?}",
                    self.shard,
                    self.transports
                        .iter()
                        .map(|t| t.peer_progress())
                        .collect::<Vec<_>>()
                );
            }
            if !self.wait_peers(now.saturating_sub(self.slack)) {
                break;
            }
            for t in &mut self.transports {
                t.ingest();
            }
            while now < batch_end {
                if self.control.stop.load(Ordering::Acquire) {
                    break 'run;
                }
                if self.track_ledger {
                    let skip = self.control.skip_to.load(Ordering::Acquire);
                    if skip > now {
                        let target = skip.min(end);
                        let skipped = target - now;
                        for tile in &mut self.tiles {
                            tile.set_cycle(target);
                            tile.router_mut().stats_mut().fast_forwarded_cycles += skipped;
                        }
                        now = target;
                        self.pump_all(now)?;
                        continue 'run;
                    }
                }
                let next = now + 1;
                let (flit_limit, credit_limit) = if self.strict {
                    (Some(next), Some(next - 1))
                } else {
                    (None, None)
                };
                for link in &self.outbound {
                    link.apply_credits(credit_limit);
                }
                for rx in &mut self.inbound {
                    recv_total += rx.deliver(flit_limit) as u64;
                }
                for tile in &mut self.tiles {
                    tile.posedge(next);
                }
                for tile in &mut self.tiles {
                    tile.negedge(next);
                }
                for rx in &mut self.inbound {
                    rx.emit_credits(next);
                }
                if self.track_ledger {
                    let state = LedgerState {
                        busy: self.busy_now(),
                        finished: self.tiles.iter().all(NetworkNode::finished),
                        next_event: if self.fast_forward {
                            self.tiles
                                .iter()
                                .filter_map(|t| t.next_event(next))
                                .min()
                                .unwrap_or(u64::MAX)
                        } else {
                            u64::MAX
                        },
                        sent: self.outbound.iter().map(|l| l.flits_pushed()).sum(),
                        recv: recv_total,
                        cycle: next,
                    };
                    let probe_view = LedgerState {
                        cycle: last_published.cycle,
                        ..state
                    };
                    let changed = !published_once || probe_view != last_published;
                    if changed {
                        // Ledger before progress: when a peer or the
                        // coordinator sees this cycle complete, the ledger
                        // already accounts for its flits.
                        self.control.ledger.publish(&state);
                        last_published = state;
                        published_once = true;
                    }
                }
                // Pump publishes progress = `next` after the ledger.
                self.pump_all(next)?;
                now = next;
                if now < batch_end && !self.wait_peers(now.saturating_sub(self.slack)) {
                    break 'run;
                }
                if now < batch_end {
                    for t in &mut self.transports {
                        t.ingest();
                    }
                }
            }
        }

        // Terminal ledger so late coordinator probes see the final state.
        if self.track_ledger {
            let state = LedgerState {
                busy: self.busy_now(),
                finished: self.tiles.iter().all(NetworkNode::finished),
                next_event: u64::MAX,
                sent: self.outbound.iter().map(|l| l.flits_pushed()).sum(),
                recv: recv_total,
                cycle: now,
            };
            let probe_view = LedgerState {
                cycle: last_published.cycle,
                ..state
            };
            if !published_once || probe_view != last_published {
                self.control.ledger.publish(&state);
            }
        }

        let completed = self.tiles.iter().all(NetworkNode::finished) && self.busy_now() == 0;
        let mut stats = NetworkStats::new();
        for tile in &self.tiles {
            stats.merge(tile.stats());
        }
        Ok(WorkerOutcome {
            final_now: now,
            stats,
            completed,
            tiles: self.tiles,
        })
    }
}

// ---------------------------------------------------------------------------
// Worker process entry.
// ---------------------------------------------------------------------------

fn proto_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("protocol: {msg}"))
}

fn set_stream_blocking(s: &Stream) -> io::Result<()> {
    match s {
        #[cfg(unix)]
        Stream::Unix(u) => u.set_nonblocking(false),
        Stream::Tcp(t) => t.set_nonblocking(false),
    }
}

/// Sends one control message over the shared writer.
fn send_ctrl(writer: &Mutex<Stream>, msg: &CtrlMsg) -> io::Result<()> {
    let mut w = writer.lock().expect("control writer poisoned");
    write_frame(&mut *w, &msg.encode())?;
    use std::io::Write;
    w.flush()
}

/// Accepts one data-plane connection with a deadline.
enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept_deadline(&self, deadline: Instant) -> io::Result<Stream> {
        loop {
            let res = match self {
                #[cfg(unix)]
                Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            };
            match res {
                Ok(s) => return Ok(s),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer connection timed out",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Runs the worker process: connects to the coordinator at `ctrl_addr`,
/// executes one assigned shard, reports, and exits when the coordinator
/// closes the control channel.
pub fn worker_main(ctrl_addr: &str, ctrl_family: &str) -> io::Result<()> {
    let ctrl = match ctrl_family {
        #[cfg(unix)]
        "unix" => Stream::Unix(UnixStream::connect(ctrl_addr)?),
        "tcp" => Stream::Tcp(TcpStream::connect(ctrl_addr)?),
        other => return Err(proto_err(&format!("unknown control family {other}"))),
    };
    let writer = Arc::new(Mutex::new(ctrl.try_clone()?));
    let mut reader = BufReader::new(ctrl);

    send_ctrl(&writer, &hello())?;
    let CtrlMsg::Assign {
        shard,
        shards,
        spec,
        transport,
        listen,
    } = CtrlMsg::decode(&read_frame(&mut reader)?)?
    else {
        return Err(proto_err("expected Assign"));
    };
    let shard = shard as usize;
    let shards = shards as usize;

    // Rebuild the full system deterministically; keep our shard.
    let partition = partition_for(&spec, shards);
    assert_eq!(
        partition.shard_count(),
        shards,
        "coordinator/worker partition mismatch"
    );
    let mut parts = build_shards(&spec, &partition)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let mine = parts.swap_remove(shard);
    drop(parts);

    // Data plane.
    let deadline = Instant::now() + Duration::from_secs(30);
    let control = WorkerControl::new();
    let mut worker = ShardWorker::from_parts(mine, &spec, control.clone());
    match transport {
        TransportKind::UnixSocket | TransportKind::Tcp => {
            let listener = match transport {
                #[cfg(unix)]
                TransportKind::UnixSocket => {
                    let l = UnixListener::bind(&listen)?;
                    l.set_nonblocking(true)?;
                    send_ctrl(
                        &writer,
                        &CtrlMsg::Listening {
                            addr: listen.clone(),
                        },
                    )?;
                    Listener::Unix(l)
                }
                #[cfg(not(unix))]
                TransportKind::UnixSocket => {
                    return Err(proto_err("unix sockets unavailable on this platform"))
                }
                _ => {
                    let l = TcpListener::bind("127.0.0.1:0")?;
                    let addr = l.local_addr()?.to_string();
                    l.set_nonblocking(true)?;
                    send_ctrl(&writer, &CtrlMsg::Listening { addr })?;
                    Listener::Tcp(l)
                }
            };
            let CtrlMsg::PeerMap { entries } = CtrlMsg::decode(&read_frame(&mut reader)?)? else {
                return Err(proto_err("expected PeerMap"));
            };
            let addrs: HashMap<usize, String> =
                entries.into_iter().map(|(s, a)| (s as usize, a)).collect();
            // Initiate to lower-id neighbors, accept from higher-id ones.
            let mut streams: HashMap<usize, Stream> = HashMap::new();
            for nb in &worker.transports_plan() {
                if *nb < shard {
                    let addr = addrs
                        .get(nb)
                        .ok_or_else(|| proto_err("missing peer addr"))?;
                    let mut s = match transport {
                        #[cfg(unix)]
                        TransportKind::UnixSocket => Stream::Unix(UnixStream::connect(addr)?),
                        _ => Stream::Tcp(TcpStream::connect(addr)?),
                    };
                    write_frame(&mut s, &CtrlMsg::PeerHello { from: shard as u32 }.encode())?;
                    use std::io::Write;
                    s.flush()?;
                    streams.insert(*nb, s);
                }
            }
            let expect_higher = worker
                .transports_plan()
                .iter()
                .filter(|&&p| p > shard)
                .count();
            for _ in 0..expect_higher {
                let mut s = listener.accept_deadline(deadline)?;
                set_stream_blocking(&s)?;
                let CtrlMsg::PeerHello { from } = CtrlMsg::decode(&read_frame(&mut s)?)? else {
                    return Err(proto_err("expected PeerHello"));
                };
                streams.insert(from as usize, s);
            }
            // Attach transports in canonical neighbor order.
            let plan = worker.transports_plan();
            for (i, peer) in plan.iter().enumerate() {
                let stream = streams
                    .remove(peer)
                    .ok_or_else(|| proto_err("peer stream missing"))?;
                let wiring = worker.neighbor_wiring(i);
                worker
                    .transports
                    .push(Box::new(SocketTransport::new(stream, &wiring, 0)?));
            }
        }
        TransportKind::Shm => {
            send_ctrl(
                &writer,
                &CtrlMsg::Listening {
                    addr: String::new(),
                },
            )?;
            let CtrlMsg::ShmMap { entries } = CtrlMsg::decode(&read_frame(&mut reader)?)? else {
                return Err(proto_err("expected ShmMap"));
            };
            let paths: HashMap<(usize, usize), String> = entries
                .into_iter()
                .map(|(lo, hi, p)| ((lo as usize, hi as usize), p))
                .collect();
            let plan = worker.transports_plan();
            for (i, peer) in plan.iter().enumerate() {
                let (lo, hi) = (shard.min(*peer), shard.max(*peer));
                let path = paths
                    .get(&(lo, hi))
                    .ok_or_else(|| proto_err("missing shm segment"))?;
                let wiring = worker.neighbor_wiring(i);
                let is_lo = shard == lo;
                // Direction lo→hi carries the lo side's out channels.
                let (lo_caps, hi_caps) = if is_lo {
                    (
                        wiring.out_links.iter().map(|l| l.capacity()).collect(),
                        wiring.in_links.iter().map(|l| l.capacity()).collect(),
                    )
                } else {
                    (
                        wiring.in_links.iter().map(|l| l.capacity()).collect(),
                        wiring.out_links.iter().map(|l| l.capacity()).collect(),
                    )
                };
                let layout = ShmTransport::layout(lo_caps, hi_caps);
                let seg = ShmSegment::open(std::path::Path::new(path), &layout)?;
                worker
                    .transports
                    .push(Box::new(ShmTransport::new(seg, &layout, is_lo, &wiring)));
            }
        }
    }

    let CtrlMsg::Start = CtrlMsg::decode(&read_frame(&mut reader)?)? else {
        return Err(proto_err("expected Start"));
    };

    // Control reader: probes, directives, and coordinator-loss detection.
    let done_flag = Arc::new(AtomicBool::new(false));
    let ctrl_thread = {
        let control = control.clone();
        let done_flag = Arc::clone(&done_flag);
        let writer = Arc::clone(&writer);
        std::thread::Builder::new()
            .name("hornet-dist-ctrl".into())
            .spawn(move || loop {
                let frame = match read_frame(&mut reader) {
                    Ok(f) => f,
                    Err(e) => {
                        if !done_flag.load(Ordering::Acquire) {
                            if std::env::var_os("HORNET_DIST_DEBUG").is_some() {
                                eprintln!("[ctrl-rx] read failed mid-run: {e}");
                            }
                            // Coordinator lost mid-run: unwind.
                            control.stop.store(true, Ordering::Release);
                        }
                        return;
                    }
                };
                match CtrlMsg::decode(&frame) {
                    Ok(CtrlMsg::Probe { round }) => {
                        let (version, state) = control.ledger.read();
                        let _ = send_ctrl(
                            &writer,
                            &CtrlMsg::Ledger {
                                round,
                                version,
                                state,
                            },
                        );
                    }
                    Ok(CtrlMsg::Skip { target }) => {
                        control.skip_to.fetch_max(target, Ordering::AcqRel);
                    }
                    Ok(CtrlMsg::Stop) => {
                        control.stop.store(true, Ordering::Release);
                    }
                    _ => {}
                }
            })?
    };

    let debug = std::env::var_os("HORNET_DIST_DEBUG").is_some();
    let budget = spec.cycle_budget();
    let outcome = worker.run(0, budget)?;
    if debug {
        eprintln!("[w{shard}] run complete at {}", outcome.final_now);
    }
    send_ctrl(
        &writer,
        &CtrlMsg::Done {
            final_now: outcome.final_now,
            completed: match spec.run {
                RunKind::Cycles(_) => true,
                RunKind::ToCompletion { .. } => outcome.completed,
            },
            stats: Box::new(outcome.stats),
        },
    )?;
    done_flag.store(true, Ordering::Release);
    if debug {
        eprintln!("[w{shard}] done sent");
    }
    // Hold every socket open until the coordinator closes the control
    // channel: peers may still be draining our final frames.
    let _ = ctrl_thread.join();
    if debug {
        eprintln!("[w{shard}] ctrl closed, exiting");
    }
    Ok(())
}

impl ShardWorker {
    /// The neighbor shard ids, in canonical (ascending) order — one
    /// transport must be attached per entry, in this order.
    pub fn transports_plan(&self) -> Vec<usize> {
        self.neighbors_meta.iter().map(|n| n.peer).collect()
    }

    /// The wiring of the `i`-th planned neighbor.
    pub fn neighbor_wiring(&self, i: usize) -> crate::wiring::NeighborWiring {
        let n = &self.neighbors_meta[i];
        crate::wiring::NeighborWiring {
            peer: n.peer,
            out_links: n.out_links.clone(),
            in_links: n.in_links.clone(),
        }
    }
}
