//! The worker side of the distributed backend: a thin host around the
//! unified [`hornet_shard::driver::CycleDriver`], and the process entry
//! point that speaks the control protocol.
//!
//! The per-cycle shard protocol itself — strict flit/credit limits, skip
//! handling, slack waits, ledger publish-on-change — lives exactly once, in
//! `hornet-shard`; this module only supplies the distributed
//! [`TransportPump`] (per-adjacency [`BoundaryTransport`]s) and the
//! process-local [`PayloadChannel`], then reports the outcome. Directives
//! (stop / fast-forward jumps) arrive from the coordinator through plain
//! atomics the control reader thread maintains.

use crate::protocol::{hello, CtrlMsg, TransportKind};
use crate::shm::{ShmSegment, ShmTransport};
use crate::spec::{DistSpec, RunKind};
use crate::transport::{BoundaryTransport, SocketTransport, Stream, TransportSet};
use crate::wire::{read_frame, write_frame};
use crate::wiring::{build_shards, partition_for, ShardParts};
use hornet_net::boundary::{BoundaryLink, BoundaryRx};
use hornet_net::ids::Cycle;
use hornet_net::network::NetworkNode;
use hornet_net::stats::NetworkStats;
use hornet_obs::metrics::{MetricsRegistry, TelemetrySample};
use hornet_obs::olog_debug;
use hornet_obs::profile::StallProfile;
use hornet_obs::trace::{TraceDump, TraceRing};
use hornet_shard::driver::{
    merge_tile_stats, CheckpointSink, CycleDriver, DriverParams, PayloadChannel, TelemetrySink,
    WaitProfile,
};
use hornet_shard::termination::ShardLedger;
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The control-plane shared state between the shard loop and the control
/// reader thread.
#[derive(Clone)]
pub struct WorkerControl {
    /// This shard's published termination ledger.
    pub ledger: Arc<ShardLedger>,
    /// Stop directive (completion declared, or coordinator lost).
    pub stop: Arc<AtomicBool>,
    /// Monotone fast-forward target.
    pub skip_to: Arc<AtomicU64>,
}

impl Default for WorkerControl {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerControl {
    /// Fresh control state.
    pub fn new() -> Self {
        Self {
            ledger: Arc::new(ShardLedger::new()),
            stop: Arc::new(AtomicBool::new(false)),
            skip_to: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// Result of one shard's run.
pub struct WorkerOutcome {
    /// The cycle the shard stopped at.
    pub final_now: Cycle,
    /// Statistics merged over this shard's tiles.
    pub stats: NetworkStats,
    /// Every local agent finished and the shard drained.
    pub completed: bool,
    /// The tiles (for in-process callers that want to inspect them).
    pub tiles: Vec<NetworkNode>,
    /// Wall-time attribution of the shard loop (compute / wait / ingest /
    /// flush).
    pub profile: StallProfile,
    /// Event trace of the shard's tile and runtime rings (empty unless the
    /// spec enabled tracing).
    pub trace: TraceDump,
}

/// One shard's execution state, generic over the boundary transport.
pub struct ShardWorker {
    /// The shard index (for diagnostics).
    pub shard: usize,
    /// The shard's tiles.
    pub tiles: Vec<NetworkNode>,
    /// All outbound boundary halves.
    pub outbound: Vec<Arc<BoundaryLink>>,
    /// All inbound receiver endpoints.
    pub inbound: Vec<BoundaryRx>,
    /// One transport per neighboring shard (attach in
    /// [`transports_plan`](Self::transports_plan) order).
    pub transports: Vec<Box<dyn BoundaryTransport>>,
    /// Per-neighbor channel wiring, canonical order.
    neighbors_meta: Vec<crate::wiring::NeighborWiring>,
    /// How payloads follow tail flits across this shard's boundaries.
    pub payloads: Arc<dyn PayloadChannel>,
    /// Maximum cycles to run ahead of neighbors.
    pub slack: u64,
    /// Cycles between drift checks.
    pub quantum: u64,
    /// Strict cycle-stamped mailbox consumption (bit-exact mode).
    pub strict: bool,
    /// Publish ledgers / honor skip directives.
    pub track_ledger: bool,
    /// Compute next-event info for fast-forward.
    pub fast_forward: bool,
    /// Capture a resumable checkpoint every this many cycles (strict only).
    pub checkpoint_every: Option<u64>,
    /// Ship a telemetry sample every this many cycles.
    pub telemetry_every: Option<u64>,
    /// Per-tile event-trace ring capacity (0 disables tracing).
    pub trace_capacity: usize,
    /// Compiled-kernel selection for the shard hot loop.
    pub kernel: hornet_net::kernel::KernelMode,
    /// Control-plane state.
    pub control: WorkerControl,
}

impl ShardWorker {
    /// Builds a worker from wiring parts, the spec's synchronization
    /// parameters and the process's payload channel (transports attached
    /// separately).
    pub fn from_parts(
        parts: ShardParts,
        spec: &DistSpec,
        control: WorkerControl,
        payloads: Arc<dyn PayloadChannel>,
    ) -> Self {
        let (slack, quantum, strict) = spec.sync.params();
        Self {
            shard: parts.shard,
            tiles: parts.tiles,
            outbound: parts.outbound,
            inbound: parts.inbound,
            transports: Vec::new(),
            neighbors_meta: parts.neighbors,
            payloads,
            slack,
            quantum,
            strict,
            track_ledger: spec.needs_detector(),
            fast_forward: spec.fast_forward,
            checkpoint_every: spec.checkpoint_every,
            telemetry_every: spec.telemetry_every,
            trace_capacity: spec.trace_capacity.unwrap_or(0) as usize,
            kernel: spec.kernel,
            control,
        }
    }

    /// Restores a shard checkpoint into this (freshly built, not yet run)
    /// worker's tiles and boundary rings. Must happen before transports are
    /// attached and before any peer traffic can arrive. Returns
    /// `(resume_cycle, received_start)` for [`run`](Self::run).
    pub fn restore(&mut self, checkpoint: &[u8]) -> io::Result<(Cycle, u64)> {
        hornet_shard::restore_shard(
            checkpoint,
            &mut self.tiles,
            &self.outbound,
            &mut self.inbound,
            &*self.payloads,
        )
    }

    /// Runs the shard for `cycles` cycles starting after `start` by handing
    /// everything to the unified [`CycleDriver`] — the per-cycle protocol
    /// has exactly one implementation, shared with the thread backend.
    /// `received_start` seeds the cumulative delivery counter (nonzero when
    /// resuming from a checkpoint), `checkpoint` receives the periodic
    /// state captures when `checkpoint_every` is set, and `telemetry`
    /// receives periodic samples when the spec set `telemetry_every`.
    pub fn run<'c>(
        self,
        start: Cycle,
        cycles: Cycle,
        received_start: u64,
        checkpoint: Option<&'c mut dyn CheckpointSink>,
        telemetry: Option<&'c mut dyn TelemetrySink>,
    ) -> io::Result<WorkerOutcome> {
        let ShardWorker {
            shard,
            mut tiles,
            outbound,
            mut inbound,
            mut transports,
            neighbors_meta: _,
            payloads,
            slack,
            quantum,
            strict,
            track_ledger,
            fast_forward,
            checkpoint_every,
            telemetry_every,
            trace_capacity,
            kernel,
            control,
        } = self;
        if trace_capacity > 0 {
            for tile in &mut tiles {
                tile.enable_tracing(trace_capacity);
            }
        }
        let metrics = telemetry_every.map(|_| MetricsRegistry::default());
        let mut runtime_ring = (trace_capacity > 0).then(|| TraceRing::new(trace_capacity));
        let mut set = TransportSet(&mut transports);
        let driver = CycleDriver {
            shard,
            tiles: &mut tiles,
            outbound: &outbound,
            inbound: &mut inbound,
            transport: &mut set,
            payloads: &*payloads,
            stop: &control.stop,
            skip_to: &control.skip_to,
            ledger: &control.ledger,
            checkpoint,
            telemetry,
            metrics: metrics.as_ref(),
            tracer: runtime_ring.as_mut(),
        };
        let outcome = driver.run(&DriverParams {
            start,
            cycles,
            slack,
            quantum,
            strict,
            track_ledger,
            fast_forward,
            checkpoint_every,
            received_start,
            wait: WaitProfile::Sleep,
            // Wall-time attribution is always on for distributed workers:
            // the loop is already syscall-bound, so the handful of clock
            // reads per cycle vanish in the noise, and the coordinator's
            // imbalance summary needs every shard's breakdown.
            profile: true,
            telemetry_every,
            kernel,
        })?;

        let mut trace = TraceDump::default();
        for tile in &mut tiles {
            tile.drain_trace(&mut trace);
        }
        if let Some(ring) = runtime_ring.as_mut() {
            ring.drain_into(&mut trace);
        }

        // `busy` comes from the driver — the same definition the
        // termination detector scanned, so host and detector cannot drift.
        let completed = tiles.iter().all(NetworkNode::finished) && outcome.busy == 0;
        Ok(WorkerOutcome {
            final_now: outcome.final_now,
            stats: merge_tile_stats(&tiles),
            completed,
            tiles,
            profile: outcome.profile,
            trace,
        })
    }
}

// ---------------------------------------------------------------------------
// Worker process entry.
// ---------------------------------------------------------------------------

/// Ships every periodic shard checkpoint to the coordinator over the control
/// plane, with an optional fault-injection point for the recovery tests.
struct CtrlCheckpointSink {
    shard: usize,
    writer: Arc<Mutex<Stream>>,
    /// `(shard, cycle, token_path)` — die before shipping the first
    /// checkpoint at `cycle ≥` this on the matching shard, if the token file
    /// can still be claimed.
    crash: Option<(usize, u64, std::path::PathBuf)>,
}

impl CheckpointSink for CtrlCheckpointSink {
    fn checkpoint(&mut self, cycle: Cycle, state: &[u8]) -> io::Result<()> {
        if let Some((shard, at, token)) = &self.crash {
            // Claiming the token by deleting it makes the injection
            // exactly-once: the respawned worker inherits the env var but
            // finds no file.
            if *shard == self.shard && cycle >= *at && std::fs::remove_file(token).is_ok() {
                #[cfg(unix)]
                {
                    let _ = std::process::Command::new("kill")
                        .arg("-9")
                        .arg(std::process::id().to_string())
                        .status();
                }
                std::process::abort();
            }
        }
        send_ctrl(
            &self.writer,
            &CtrlMsg::Checkpoint {
                cycle,
                data: state.to_vec(),
            },
        )
    }
}

/// Ships every periodic telemetry sample to the coordinator over the control
/// plane. Send failures are swallowed: telemetry is advisory, and a lost
/// coordinator already stops the run through the control reader.
struct CtrlTelemetrySink {
    writer: Arc<Mutex<Stream>>,
}

impl TelemetrySink for CtrlTelemetrySink {
    fn emit(&mut self, sample: &TelemetrySample) {
        let _ = send_ctrl(
            &self.writer,
            &CtrlMsg::Telemetry {
                sample: Box::new(sample.clone()),
            },
        );
    }
}

/// Parses `HORNET_DIST_CRASH_TOKEN`: the path of a file containing
/// `"<shard> <cycle>"`. The named shard SIGKILLs itself at its first
/// checkpoint at or after `cycle`, before shipping it.
fn crash_token() -> Option<(usize, u64, std::path::PathBuf)> {
    let path = std::path::PathBuf::from(std::env::var_os("HORNET_DIST_CRASH_TOKEN")?);
    let s = std::fs::read_to_string(&path).ok()?;
    let mut it = s.split_whitespace();
    let shard = it.next()?.parse().ok()?;
    let cycle = it.next()?.parse().ok()?;
    Some((shard, cycle, path))
}

fn proto_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("protocol: {msg}"))
}

fn set_stream_blocking(s: &Stream) -> io::Result<()> {
    match s {
        #[cfg(unix)]
        Stream::Unix(u) => u.set_nonblocking(false),
        Stream::Tcp(t) => t.set_nonblocking(false),
    }
}

/// Sends one control message over the shared writer.
fn send_ctrl(writer: &Mutex<Stream>, msg: &CtrlMsg) -> io::Result<()> {
    let mut w = writer.lock().expect("control writer poisoned");
    write_frame(&mut *w, &msg.encode())?;
    use std::io::Write;
    w.flush()
}

/// Accepts one data-plane connection with a deadline.
enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept_deadline(&self, deadline: Instant) -> io::Result<Stream> {
        loop {
            let res = match self {
                #[cfg(unix)]
                Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            };
            match res {
                Ok(s) => return Ok(s),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer connection timed out",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Connects to the coordinator's control plane, retrying for up to a minute
/// while the coordinator is not up yet — host-list workers may legitimately
/// be started before the coordinator, in any order.
fn connect_ctrl(ctrl_addr: &str, ctrl_family: &str) -> io::Result<Stream> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let res = match ctrl_family {
            #[cfg(unix)]
            "unix" => UnixStream::connect(ctrl_addr).map(Stream::Unix),
            "tcp" => TcpStream::connect(ctrl_addr).map(Stream::Tcp),
            other => return Err(proto_err(&format!("unknown control family {other}"))),
        };
        match res {
            Ok(s) => return Ok(s),
            Err(e)
                if Instant::now() < deadline
                    && matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionRefused
                            | io::ErrorKind::NotFound
                            | io::ErrorKind::AddrNotAvailable
                    ) =>
            {
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs the worker process: connects to the coordinator at `ctrl_addr`
/// (retrying while it is not up yet), executes one assigned shard, reports,
/// and exits when the coordinator closes the control channel.
///
/// In host-list mode (`hornet-dist host --workers host1:port,...`) the
/// worker announces `advertise` — the `host:port` its data plane is
/// reachable at from the other machines — and the coordinator assigns it
/// the matching shard. `nonce` must echo the coordinator's run nonce or the
/// Hello is rejected.
pub fn worker_main(
    ctrl_addr: &str,
    ctrl_family: &str,
    advertise: Option<&str>,
    nonce: u64,
) -> io::Result<()> {
    let ctrl = connect_ctrl(ctrl_addr, ctrl_family)?;
    let writer = Arc::new(Mutex::new(ctrl.try_clone()?));
    let mut reader = BufReader::new(ctrl);

    send_ctrl(&writer, &hello(advertise.unwrap_or(""), nonce))?;
    let CtrlMsg::Assign {
        shard,
        shards,
        spec,
        transport,
        listen,
        heartbeat_ms,
        resume,
    } = CtrlMsg::decode(&read_frame(&mut reader)?)?
    else {
        return Err(proto_err("expected Assign"));
    };
    let shard = shard as usize;
    let shards = shards as usize;

    // Rebuild the full system deterministically; keep our shard.
    let partition = partition_for(&spec, shards);
    assert_eq!(
        partition.shard_count(),
        shards,
        "coordinator/worker partition mismatch"
    );
    let (mut parts, store) = build_shards(&spec, &partition)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let mine = parts.swap_remove(shard);
    drop(parts);

    // Data plane. The payload channel is remote: peers live in other
    // processes, so packet payloads must follow their tail flits over the
    // transports (the store itself is this process's bridge-side DMA park).
    let payloads: Arc<dyn PayloadChannel> =
        Arc::new(hornet_shard::driver::PayloadEndpoint::remote(store));
    let batch = spec.socket_batch();
    let deadline = Instant::now() + Duration::from_secs(30);
    let control = WorkerControl::new();
    let mut worker = ShardWorker::from_parts(mine, &spec, control.clone(), Arc::clone(&payloads));

    // Crash recovery: restore the shipped checkpoint into the freshly built
    // shard *before* attaching transports — no peer traffic can race the
    // ring restore, and every transport starts its progress mirror at the
    // rendezvous cycle instead of 0.
    let (start_cycle, received_start) = match &resume {
        Some(bytes) => worker.restore(bytes)?,
        None => (0, 0),
    };
    match transport {
        TransportKind::UnixSocket | TransportKind::Tcp => {
            let listener = match transport {
                #[cfg(unix)]
                TransportKind::UnixSocket => {
                    let l = UnixListener::bind(&listen)?;
                    l.set_nonblocking(true)?;
                    send_ctrl(
                        &writer,
                        &CtrlMsg::Listening {
                            addr: listen.clone(),
                        },
                    )?;
                    Listener::Unix(l)
                }
                #[cfg(not(unix))]
                TransportKind::UnixSocket => {
                    return Err(proto_err("unix sockets unavailable on this platform"))
                }
                _ if !listen.is_empty() => {
                    // Host-list mode: the coordinator assigned this worker an
                    // advertised `host:port`; bind the port on all interfaces
                    // and advertise the reachable address.
                    let port = listen
                        .rsplit_once(':')
                        .and_then(|(_, p)| p.parse::<u16>().ok())
                        .ok_or_else(|| proto_err("bad advertised address"))?;
                    let l = TcpListener::bind(("0.0.0.0", port))?;
                    l.set_nonblocking(true)?;
                    send_ctrl(
                        &writer,
                        &CtrlMsg::Listening {
                            addr: listen.clone(),
                        },
                    )?;
                    Listener::Tcp(l)
                }
                _ => {
                    let l = TcpListener::bind("127.0.0.1:0")?;
                    let addr = l.local_addr()?.to_string();
                    l.set_nonblocking(true)?;
                    send_ctrl(&writer, &CtrlMsg::Listening { addr })?;
                    Listener::Tcp(l)
                }
            };
            let CtrlMsg::PeerMap { entries } = CtrlMsg::decode(&read_frame(&mut reader)?)? else {
                return Err(proto_err("expected PeerMap"));
            };
            let addrs: HashMap<usize, String> =
                entries.into_iter().map(|(s, a)| (s as usize, a)).collect();
            // Initiate to lower-id neighbors, accept from higher-id ones.
            let mut streams: HashMap<usize, Stream> = HashMap::new();
            for nb in &worker.transports_plan() {
                if *nb < shard {
                    let addr = addrs
                        .get(nb)
                        .ok_or_else(|| proto_err("missing peer addr"))?;
                    let mut s = match transport {
                        #[cfg(unix)]
                        TransportKind::UnixSocket => Stream::Unix(UnixStream::connect(addr)?),
                        _ => Stream::Tcp(TcpStream::connect(addr)?),
                    };
                    write_frame(&mut s, &CtrlMsg::PeerHello { from: shard as u32 }.encode())?;
                    use std::io::Write;
                    s.flush()?;
                    streams.insert(*nb, s);
                }
            }
            let expect_higher = worker
                .transports_plan()
                .iter()
                .filter(|&&p| p > shard)
                .count();
            for _ in 0..expect_higher {
                let mut s = listener.accept_deadline(deadline)?;
                set_stream_blocking(&s)?;
                let CtrlMsg::PeerHello { from } = CtrlMsg::decode(&read_frame(&mut s)?)? else {
                    return Err(proto_err("expected PeerHello"));
                };
                streams.insert(from as usize, s);
            }
            // Attach transports in canonical neighbor order.
            let plan = worker.transports_plan();
            for (i, peer) in plan.iter().enumerate() {
                let stream = streams
                    .remove(peer)
                    .ok_or_else(|| proto_err("peer stream missing"))?;
                let wiring = worker.neighbor_wiring(i);
                worker.transports.push(Box::new(SocketTransport::new(
                    stream,
                    &wiring,
                    start_cycle,
                    batch,
                    Arc::clone(&payloads),
                )?));
            }
        }
        TransportKind::Shm => {
            send_ctrl(
                &writer,
                &CtrlMsg::Listening {
                    addr: String::new(),
                },
            )?;
            let CtrlMsg::ShmMap { entries } = CtrlMsg::decode(&read_frame(&mut reader)?)? else {
                return Err(proto_err("expected ShmMap"));
            };
            let paths: HashMap<(usize, usize), String> = entries
                .into_iter()
                .map(|(lo, hi, p)| ((lo as usize, hi as usize), p))
                .collect();
            let plan = worker.transports_plan();
            for (i, peer) in plan.iter().enumerate() {
                let (lo, hi) = (shard.min(*peer), shard.max(*peer));
                let path = paths
                    .get(&(lo, hi))
                    .ok_or_else(|| proto_err("missing shm segment"))?;
                let wiring = worker.neighbor_wiring(i);
                let is_lo = shard == lo;
                // Direction lo→hi carries the lo side's out channels.
                let (lo_caps, hi_caps) = if is_lo {
                    (
                        wiring.out_links.iter().map(|l| l.capacity()).collect(),
                        wiring.in_links.iter().map(|l| l.capacity()).collect(),
                    )
                } else {
                    (
                        wiring.in_links.iter().map(|l| l.capacity()).collect(),
                        wiring.out_links.iter().map(|l| l.capacity()).collect(),
                    )
                };
                let layout = ShmTransport::layout(lo_caps, hi_caps, spec.sync_depth());
                let seg = ShmSegment::open(std::path::Path::new(path), &layout)?;
                worker
                    .transports
                    .push(Box::new(ShmTransport::new(seg, &layout, is_lo, &wiring)));
            }
        }
    }

    let CtrlMsg::Start = CtrlMsg::decode(&read_frame(&mut reader)?)? else {
        return Err(proto_err("expected Start"));
    };

    // Resume: every peer must observe our progress at the rendezvous cycle
    // (shm progress words start at 0 in a fresh segment), and any restored
    // staged traffic goes onto the wire now.
    if start_cycle > 0 {
        worker.publish_progress(start_cycle)?;
    }

    // Control reader: probes, directives, and coordinator-loss detection.
    let done_flag = Arc::new(AtomicBool::new(false));
    let ctrl_thread = {
        let control = control.clone();
        let done_flag = Arc::clone(&done_flag);
        let writer = Arc::clone(&writer);
        std::thread::Builder::new()
            .name("hornet-dist-ctrl".into())
            .spawn(move || loop {
                let frame = match read_frame(&mut reader) {
                    Ok(f) => f,
                    Err(e) => {
                        if !done_flag.load(Ordering::Acquire) {
                            olog_debug!("ctrl-rx", {}, "read failed mid-run: {}", e);
                            // Coordinator lost mid-run: unwind.
                            control.stop.store(true, Ordering::Release);
                        }
                        return;
                    }
                };
                match CtrlMsg::decode(&frame) {
                    Ok(CtrlMsg::Probe { round }) => {
                        let (version, state) = control.ledger.read();
                        let _ = send_ctrl(
                            &writer,
                            &CtrlMsg::Ledger {
                                round,
                                version,
                                state,
                            },
                        );
                    }
                    Ok(CtrlMsg::Skip { target }) => {
                        control.skip_to.fetch_max(target, Ordering::AcqRel);
                    }
                    Ok(CtrlMsg::Stop) => {
                        control.stop.store(true, Ordering::Release);
                    }
                    _ => {}
                }
            })?
    };

    // Liveness heartbeats: a thin periodic signal so the coordinator can
    // tell a hung worker from a slow one without waiting for the full
    // no-progress timeout.
    if heartbeat_ms > 0 {
        let writer = Arc::clone(&writer);
        let control = control.clone();
        let done_flag = Arc::clone(&done_flag);
        std::thread::Builder::new()
            .name("hornet-dist-hb".into())
            .spawn(move || {
                let interval = Duration::from_millis(heartbeat_ms);
                while !done_flag.load(Ordering::Acquire) {
                    let (_, state) = control.ledger.read();
                    if send_ctrl(&writer, &CtrlMsg::Heartbeat { cycle: state.cycle }).is_err() {
                        return;
                    }
                    std::thread::sleep(interval);
                }
            })?;
    }

    let budget = spec.cycle_budget();
    let mut sink = CtrlCheckpointSink {
        shard,
        writer: Arc::clone(&writer),
        crash: crash_token(),
    };
    let mut telemetry_sink = CtrlTelemetrySink {
        writer: Arc::clone(&writer),
    };
    let telemetry = spec
        .telemetry_every
        .is_some()
        .then_some(&mut telemetry_sink as &mut dyn TelemetrySink);
    let outcome = worker.run(
        start_cycle,
        budget.saturating_sub(start_cycle),
        received_start,
        Some(&mut sink),
        telemetry,
    )?;
    olog_debug!("worker", { shard = shard, cycle = outcome.final_now }, "run complete");
    let trace_blob = if outcome.trace.events.is_empty() && outcome.trace.dropped == 0 {
        Vec::new()
    } else {
        outcome.trace.encode()
    };
    send_ctrl(
        &writer,
        &CtrlMsg::Done {
            final_now: outcome.final_now,
            completed: match spec.run {
                RunKind::Cycles(_) => true,
                RunKind::ToCompletion { .. } => outcome.completed,
            },
            stats: Box::new(outcome.stats),
            profile: outcome.profile,
            trace: trace_blob,
        },
    )?;
    done_flag.store(true, Ordering::Release);
    olog_debug!("worker", { shard = shard }, "done sent");
    // Hold every socket open until the coordinator closes the control
    // channel: peers may still be draining our final frames.
    let _ = ctrl_thread.join();
    olog_debug!("worker", { shard = shard }, "ctrl closed, exiting");
    Ok(())
}

impl ShardWorker {
    /// The neighbor shard ids, in canonical (ascending) order — one
    /// transport must be attached per entry, in this order.
    pub fn transports_plan(&self) -> Vec<usize> {
        self.neighbors_meta.iter().map(|n| n.peer).collect()
    }

    /// Publishes `cycle` as this side's negedge progress on every attached
    /// transport and flushes any staged traffic. Used on resume, where peers
    /// must observe the rendezvous cycle rather than a transport's initial 0.
    pub fn publish_progress(&mut self, cycle: Cycle) -> io::Result<()> {
        let payloads = Arc::clone(&self.payloads);
        for t in &mut self.transports {
            t.pump(cycle, &*payloads, true)?;
        }
        Ok(())
    }

    /// The wiring of the `i`-th planned neighbor.
    pub fn neighbor_wiring(&self, i: usize) -> crate::wiring::NeighborWiring {
        let n = &self.neighbors_meta[i];
        crate::wiring::NeighborWiring {
            peer: n.peer,
            out_links: n.out_links.clone(),
            in_links: n.in_links.clone(),
        }
    }
}
