//! # hornet-dist
//!
//! The distributed execution backend of HORNET-RS: shards of the simulated
//! system hosted in separate OS processes (and, via TCP, separate machines),
//! communicating over pluggable boundary transports, with credit-counting
//! distributed termination detection instead of any global barrier.
//!
//! The pieces:
//!
//! * [`transport`] — the [`BoundaryTransport`](transport::BoundaryTransport)
//!   trait abstracting one shard adjacency's cut-link channel (flits forward,
//!   credits backward, negedge progress alongside), with the in-process SPSC
//!   ring, shared-memory segment ([`shm`]) and length-prefixed Unix/TCP
//!   socket implementations;
//! * [`wiring`] — the canonical cut-channel enumeration every process
//!   derives independently from `(geometry, partition, router parameters)`,
//!   which doubles as the wire addressing scheme;
//! * [`worker`] — a thin host around the **unified**
//!   [`hornet_shard::driver::CycleDriver`] (the per-cycle shard protocol has
//!   exactly one implementation, shared with the thread backend) and the
//!   worker process entry point;
//! * [`host`] — the coordinator: spawns workers (or, in host-list mode,
//!   waits for pre-started remote ones), runs the topology-aware
//!   partitioner, ships each worker the spec, wires the data plane, and
//!   drives probe-round credit-counting termination
//!   ([`hornet_shard::termination`]);
//! * [`spec`] / [`protocol`] / [`wire`] — the workload description and the
//!   byte-level control/data protocol.
//!
//! In `CycleAccurate` (or `Slack(0)`) mode a distributed run is bit-identical
//! to the sequential simulation of the same spec — same packet count, same
//! latency totals, same log₂ latency histogram — because flits carry their
//! visibility stamps and every transport upholds the same delivery contract
//! as the in-process mailboxes. Packet *payloads* are first-class boundary
//! traffic: transports claim a packet's payload when its tail flit leaves
//! for another process and re-deposit it on arrival, which is what lets the
//! memory-hierarchy and CPU workloads ([`spec::DistWorkload`]) run
//! distributed with the same bit-identity guarantee.

pub mod host;
pub mod protocol;
pub mod shm;
pub mod spec;
pub mod transport;
pub mod wire;
pub mod wiring;
pub mod worker;

pub use host::{run_distributed, run_threaded, DistOutcome, HostOptions};
pub use protocol::TransportKind;
pub use spec::{DistSpec, DistSync, DistWorkload, RunKind};
pub use transport::{BoundaryTransport, InProcTransport, SocketTransport, TransportSet};
