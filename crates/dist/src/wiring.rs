//! Shard wiring: the canonical cut-channel enumeration and the per-shard
//! boundary endpoints built from it.
//!
//! Every process — the coordinator and each worker — derives the *same*
//! ordered list of directed cut-link VC channels from `(geometry, partition,
//! router parameters)`. That shared order is the addressing scheme of the
//! whole data plane: frame records and shared-memory ring offsets refer to a
//! channel by its position in the per-neighbor-direction sub-list, so no
//! channel table ever needs to cross the wire.

use crate::spec::DistSpec;
use hornet_net::boundary::{BoundaryLink, BoundaryRx, EgressChannel};
use hornet_net::config::ConfigError;
use hornet_net::geometry::Geometry;
use hornet_net::ids::NodeId;
use hornet_net::network::NetworkNode;
use hornet_net::payload::PayloadStore;
use hornet_shard::{Partition, Partitioner};
use std::sync::Arc;

/// One directed cut-link virtual channel.
#[derive(Clone, Debug)]
pub struct CutChannel {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Shard of the sending node.
    pub src_shard: usize,
    /// Shard of the receiving node.
    pub dst_shard: usize,
    /// Virtual channel index within the link.
    pub vc: usize,
    /// Capacity of the downstream ingress VC buffer, in flits.
    pub capacity: usize,
}

/// The undirected cut pairs of a partition over a geometry, in canonical
/// order (node-index order, each link once as `(low, high)`).
pub fn cut_pairs(geometry: &Geometry, partition: &Partition) -> Vec<(NodeId, NodeId)> {
    let edges = geometry.nodes().flat_map(|id| {
        geometry
            .neighbors(id)
            .iter()
            .filter(move |nb| nb.index() > id.index())
            .map(move |&nb| (id, nb))
    });
    partition.cut_links(edges)
}

/// Every directed cut-link VC channel, in canonical order: cut pairs in
/// [`cut_pairs`] order, each expanded to both directions (`low→high` first),
/// each direction expanded to its VCs in index order.
pub fn cut_channels(
    geometry: &Geometry,
    partition: &Partition,
    vcs_per_port: usize,
    vc_capacity: usize,
) -> Vec<CutChannel> {
    let mut channels = Vec::new();
    for (a, b) in cut_pairs(geometry, partition) {
        for (src, dst) in [(a, b), (b, a)] {
            for vc in 0..vcs_per_port {
                channels.push(CutChannel {
                    src,
                    dst,
                    src_shard: partition.shard_of(src),
                    dst_shard: partition.shard_of(dst),
                    vc,
                    capacity: vc_capacity,
                });
            }
        }
    }
    channels
}

/// The boundary endpoints of one shard toward one neighboring shard, in
/// canonical channel order. The `out_links`/`in_links` positions are the
/// channel indices used on the wire.
pub struct NeighborWiring {
    /// The neighboring shard.
    pub peer: usize,
    /// Outbound halves (this shard's routers push into these).
    pub out_links: Vec<Arc<BoundaryLink>>,
    /// Inbound halves (filled by the transport, drained into ingress
    /// buffers by this shard's [`BoundaryRx`] endpoints).
    pub in_links: Vec<Arc<BoundaryLink>>,
}

/// Everything one shard needs to run: its tiles and boundary endpoints.
pub struct ShardParts {
    /// This shard's index.
    pub shard: usize,
    /// The tiles, in partition-member order.
    pub tiles: Vec<NetworkNode>,
    /// All outbound halves, canonical order (for credit application and the
    /// termination ledger's `sent` count).
    pub outbound: Vec<Arc<BoundaryLink>>,
    /// All inbound receiver endpoints, canonical order.
    pub inbound: Vec<BoundaryRx>,
    /// Per-neighbor channel lists (the wire addressing).
    pub neighbors: Vec<NeighborWiring>,
}

/// Builds the partition a distributed run of `spec` over `workers` shards
/// uses (band-aligned, cut-minimal orientation).
pub fn partition_for(spec: &DistSpec, workers: usize) -> Partition {
    Partitioner::new(workers).mesh(spec.width as usize, spec.height as usize)
}

/// Builds the full network for `spec`, splits it into per-shard parts, and
/// wires every cut channel onto boundary-link halves. Also returns the
/// process's payload store (the DMA side channel every bridge deposits into):
/// multi-process transports claim payloads from it when tail flits leave for
/// another process.
///
/// The halves are *shared*: the outbound half of channel `c` in the sender's
/// parts is the same `Arc` as the inbound half in the receiver's parts. The
/// in-process transport uses that sharing directly (the ring *is* the
/// channel); a worker process simply drops every shard's parts but its own,
/// leaving its halves exclusive so a transport pump can play the peer side.
pub fn build_shards(
    spec: &DistSpec,
    partition: &Partition,
) -> Result<(Vec<ShardParts>, Arc<PayloadStore>), ConfigError> {
    let network = spec.build_network()?;
    let geometry = network.geometry().clone();
    let (mut nodes, store) = network.into_nodes();
    let shards = partition.shard_count();
    assert_eq!(partition.node_count(), nodes.len());

    let channels = cut_channels(
        &geometry,
        partition,
        spec.vcs_per_port as usize,
        spec.vc_capacity as usize,
    );

    let mut parts: Vec<ShardParts> = (0..shards)
        .map(|shard| ShardParts {
            shard,
            tiles: Vec::new(),
            outbound: Vec::new(),
            inbound: Vec::new(),
            neighbors: Vec::new(),
        })
        .collect();

    // Wire channels: group consecutive channels of the same directed link so
    // the egress swap replaces all VCs at once.
    let mut i = 0;
    while i < channels.len() {
        let (src, dst) = (channels[i].src, channels[i].dst);
        let mut j = i;
        while j < channels.len() && channels[j].src == src && channels[j].dst == dst {
            j += 1;
        }
        let group = &channels[i..j];
        let (s_src, s_dst) = (group[0].src_shard, group[0].dst_shard);
        let targets = nodes[dst.index()]
            .router()
            .ingress_buffers_from(src)
            .to_vec();
        assert_eq!(targets.len(), group.len(), "VC count mismatch on cut link");
        let links: Vec<Arc<BoundaryLink>> = targets
            .iter()
            .map(|t| BoundaryLink::with_resident(t.capacity(), t.occupancy()))
            .collect();
        let egress: Vec<EgressChannel> = links
            .iter()
            .map(|l| EgressChannel::Boundary(Arc::clone(l)))
            .collect();
        nodes[src.index()]
            .router_mut()
            .swap_egress_channels(dst, egress);
        assert!(
            !nodes[src.index()].router().has_bidir_toward(dst),
            "bandwidth-adaptive bidirectional links cannot cross process boundaries"
        );

        // Sender side.
        {
            let p = &mut parts[s_src];
            p.outbound.extend(links.iter().cloned());
            let nb = neighbor_entry(&mut p.neighbors, s_dst);
            nb.out_links.extend(links.iter().cloned());
        }
        // Receiver side.
        {
            let p = &mut parts[s_dst];
            let nb = neighbor_entry(&mut p.neighbors, s_src);
            nb.in_links.extend(links.iter().cloned());
            p.inbound.extend(
                links
                    .into_iter()
                    .zip(targets)
                    .map(|(link, target)| BoundaryRx::new(link, target)),
            );
        }
        i = j;
    }

    // Distribute the tiles.
    let mut slots: Vec<Option<NetworkNode>> = nodes.into_iter().map(Some).collect();
    for (shard, part) in parts.iter_mut().enumerate() {
        part.tiles = partition
            .members(shard)
            .iter()
            .map(|&n| slots[n].take().expect("tile owned by exactly one shard"))
            .collect();
        // Canonical neighbor order (ascending shard id) for transports.
        part.neighbors.sort_by_key(|n| n.peer);
    }
    Ok((parts, store))
}

fn neighbor_entry(neighbors: &mut Vec<NeighborWiring>, peer: usize) -> &mut NeighborWiring {
    if let Some(pos) = neighbors.iter().position(|n| n.peer == peer) {
        &mut neighbors[pos]
    } else {
        neighbors.push(NeighborWiring {
            peer,
            out_links: Vec::new(),
            in_links: Vec::new(),
        });
        neighbors.last_mut().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_enumeration_is_deterministic_and_complete() {
        let spec = DistSpec {
            width: 8,
            height: 8,
            ..DistSpec::default()
        };
        let partition = partition_for(&spec, 4);
        let geometry = Geometry::mesh2d(8, 8);
        let a = cut_channels(&geometry, &partition, 4, 4);
        let b = cut_channels(&geometry, &partition, 4, 4);
        assert_eq!(a.len(), b.len());
        // 3 boundaries × 8 links × 2 directions × 4 VCs.
        assert_eq!(a.len(), 3 * 8 * 2 * 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.src, x.dst, x.vc), (y.src, y.dst, y.vc));
        }
    }

    #[test]
    fn shard_parts_share_halves_and_cover_all_tiles() {
        let spec = DistSpec {
            width: 4,
            height: 4,
            ..DistSpec::default()
        };
        let partition = partition_for(&spec, 2);
        let (parts, _store) = build_shards(&spec, &partition).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].tiles.len() + parts[1].tiles.len(), 16);
        // One boundary, 4 links, 4 VCs per direction.
        assert_eq!(parts[0].outbound.len(), 16);
        assert_eq!(parts[1].outbound.len(), 16);
        assert_eq!(parts[0].neighbors.len(), 1);
        // The outbound half of shard 0 toward shard 1 is the inbound half of
        // shard 1 from shard 0 (shared Arc).
        let out0 = &parts[0].neighbors[0].out_links;
        let in1 = &parts[1].neighbors[0].in_links;
        assert_eq!(out0.len(), in1.len());
        for (a, b) in out0.iter().zip(in1) {
            assert!(Arc::ptr_eq(a, b));
        }
    }
}
