//! The wire format of the distributed backend.
//!
//! The codec itself (little-endian primitives, frames, flit/packet/credit/
//! stats records) lives in [`hornet_net::codec`] so the per-crate snapshot
//! implementations can serialize through it without depending on this crate;
//! it is re-exported here under its historical name. This module keeps the
//! protocol version, which is a property of the coordinator↔worker protocol,
//! not of the codec.

pub use hornet_net::codec::{
    decode_credit, decode_flit, decode_packet, decode_stats, encode_credit, encode_flit,
    encode_packet, encode_stats, read_frame, write_frame, Dec, Enc, CREDIT_WIRE_BYTES,
    FLIT_WIRE_BYTES,
};

/// Protocol version, checked in every hello exchange.
/// v2: payload records in cycle frames, workload-bearing specs, host-list
/// hellos.
/// v3: handshake nonces, heartbeats, checkpoint shipping and resume-bearing
/// shard assignments (fault-tolerant supervision).
/// v4: periodic telemetry samples (`CtrlMsg::Telemetry`), stall profiles and
/// event-trace blobs in the final report, telemetry/trace knobs in the spec.
pub const WIRE_VERSION: u32 = 4;
