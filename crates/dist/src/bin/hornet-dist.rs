//! The distributed simulation host binary.
//!
//! ```text
//! hornet-dist host --workers 4 --transport unix --mesh 16x16 \
//!     --pattern transpose --rate 0.05 --cycles 10000 [--sync ca|slack:K|periodic:N]
//! hornet-dist host --workers 4 --to-completion 1000000 --max-packets 50 --fast-forward
//! hornet-dist host --workers 4 --workload vsum:8 --to-completion 400000
//!
//! # Cross-machine (host-list) mode: start one worker per machine first,
//! # then point the coordinator at their data-plane addresses:
//! hornet-dist worker --connect coord:9100 --family tcp --advertise node1:9101
//! hornet-dist host --workers node1:9101,node2:9101 --listen 0.0.0.0:9100 ...
//!
//! hornet-dist worker --connect ADDR --family unix|tcp     (internal)
//! ```
//!
//! `host` partitions the mesh, spawns N copies of this binary in `worker`
//! mode (or waits for the listed remote workers), wires the cut links onto
//! the chosen transport, runs the workload and prints the merged report
//! (optionally as JSON with `--json`). With `--http ADDR` the coordinator
//! additionally serves `/healthz`, `/status`, `/metrics`, `/trace` and
//! `/alerts` for the duration of the run; `watch` renders a live per-shard
//! table from any such endpoint, and `lint-prom` validates a scraped
//! Prometheus exposition.

use hornet_dist::spec::{DistSpec, DistSync, DistWorkload, RunKind};
use hornet_dist::{run_distributed, HostOptions, TransportKind};
use hornet_obs::metrics::TelemetrySample;
use hornet_obs::serve::{http_get, lint_prometheus, Json};
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hornet-dist host [--workers N | --workers h1:p,h2:p,...] [--listen ADDR]\n    \
         [--transport unix|tcp|shm] [--mesh WxH]\n    \
         [--workload synthetic|vsum:COUNT|tokenring]\n    \
         [--pattern transpose|uniform|bitcomp|shuffle|tornado|neighbor] [--rate F]\n    \
         [--cycles N | --to-completion MAX] [--packet-len N] [--max-packets N]\n    \
         [--seed N] [--sync ca|slack:K|periodic:N] [--fast-forward]\n    \
         [--checkpoint-every N] [--max-restarts N]\n    \
         [--metrics-out FILE] [--metrics-every N] [--trace CAPACITY] [--trace-out FILE]\n    \
         [--http ADDR] [--json] [--verbose]\n  \
         hornet-dist worker --connect ADDR --family unix|tcp [--advertise HOST:PORT]\n    \
         [--nonce N]\n  \
         hornet-dist watch --http ADDR [--interval MS] [--iterations N]\n  \
         hornet-dist lint-prom FILE\n  \
         hornet-dist validate-metrics FILE"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker") => worker(&args[1..]),
        Some("host") => host(&args[1..]),
        Some("watch") => watch(&args[1..]),
        Some("lint-prom") => lint_prom(&args[1..]),
        Some("validate-metrics") => validate_metrics(&args[1..]),
        _ => usage(),
    }
}

/// Validates a scraped `/metrics` payload against the Prometheus text
/// exposition format.
fn lint_prom(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lint-prom: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match lint_prometheus(&text) {
        Ok(()) => {
            println!("{path}: exposition ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lint-prom: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Polls a coordinator's (or in-process engine's) `/status` endpoint and
/// renders a live per-shard table. `--iterations 0` polls until the server
/// goes away.
fn watch(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut interval_ms = 1_000u64;
    let mut iterations = 0u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().cloned().unwrap_or_default();
        match a.as_str() {
            "--http" => addr = Some(next()),
            "--interval" => interval_ms = next().parse().unwrap_or(1_000),
            "--iterations" => iterations = next().parse().unwrap_or(0),
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        return usage();
    };
    let mut done = 0u64;
    loop {
        let status = match http_get(&addr, "/status") {
            Ok((200, body)) => body,
            Ok((code, _)) => {
                eprintln!("watch: {addr}/status returned {code}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                if done > 0 {
                    // The run ended and took the server with it.
                    println!("watch: {addr} gone ({e}); run over");
                    return ExitCode::SUCCESS;
                }
                eprintln!("watch: cannot reach {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match Json::parse(&status) {
            Ok(doc) => print_status_table(&addr, &doc),
            Err(e) => {
                eprintln!("watch: bad /status payload: {e}");
                return ExitCode::FAILURE;
            }
        }
        done += 1;
        if iterations > 0 && done >= iterations {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// One `watch` frame: headline gauges, then one row per reporting shard.
fn print_status_table(addr: &str, doc: &Json) {
    let num = |j: Option<&Json>| j.and_then(Json::as_f64);
    let uptime_s = num(doc.get("uptime_ms")).unwrap_or(0.0) / 1e3;
    let alerts = num(doc.get("alerts").and_then(|a| a.get("active"))).unwrap_or(0.0);
    let imbalance = num(doc.get("load_imbalance"));
    print!("\x1b[H\x1b[2J"); // home + clear: repaint in place
    print!("{addr} | up {uptime_s:.0}s | active alerts {alerts:.0}");
    if let Some(i) = imbalance {
        print!(" | imbalance {i:.3}");
    }
    if let Some(lat) = doc.get("latency") {
        if let (Some(p50), Some(p95), Some(p99)) = (
            num(lat.get("p50")),
            num(lat.get("p95")),
            num(lat.get("p99")),
        ) {
            print!(" | latency p50 {p50:.1} p95 {p95:.1} p99 {p99:.1}");
        }
    }
    println!();
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>10} {:>8} {:>7}",
        "shard", "cycle", "cycles/sec", "delivered", "buffered", "wait%", "age_ms"
    );
    let Some(shards) = doc.get("shards").and_then(Json::as_array) else {
        return;
    };
    for s in shards {
        let cps =
            num(s.get("cycles_per_sec")).map_or_else(|| "-".to_string(), |v| format!("{v:.0}"));
        let wait = s
            .get("stall")
            .and_then(|st| {
                let total: f64 = ["compute", "wait", "ingest", "flush"]
                    .iter()
                    .filter_map(|k| num(st.get(k)))
                    .sum();
                num(st.get("wait")).map(|w| if total > 0.0 { w / total * 100.0 } else { 0.0 })
            })
            .map_or_else(|| "-".to_string(), |v| format!("{v:.1}"));
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>10} {:>8} {:>7}",
            num(s.get("shard")).unwrap_or(-1.0) as i64,
            num(s.get("cycle")).unwrap_or(0.0) as u64,
            cps,
            num(s.get("delivered_packets")).unwrap_or(0.0) as u64,
            num(s.get("buffered_flits")).unwrap_or(0.0) as u64,
            wait,
            num(s.get("age_ms")).unwrap_or(0.0) as u64,
        );
    }
}

/// Checks every line of an NDJSON metrics stream against the telemetry
/// schema; prints a per-file verdict and fails on the first bad line.
fn validate_metrics(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate-metrics: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut n = 0usize;
    let mut summaries = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        // Summary records (flushed on rollback/abort and at the end of the
        // run) are JSON objects too, but not telemetry samples.
        if line.starts_with("{\"summary\":true") {
            if Json::parse(line).is_err() {
                eprintln!(
                    "validate-metrics: {path}:{}: malformed summary record",
                    i + 1
                );
                return ExitCode::FAILURE;
            }
            summaries += 1;
            continue;
        }
        if let Err(e) = TelemetrySample::validate_ndjson_line(line) {
            eprintln!("validate-metrics: {path}:{}: {e}", i + 1);
            return ExitCode::FAILURE;
        }
        n += 1;
    }
    println!("{path}: {n} samples, {summaries} summary records, schema ok");
    ExitCode::SUCCESS
}

fn worker(args: &[String]) -> ExitCode {
    let mut connect = None;
    let mut family = "unix".to_string();
    let mut advertise: Option<String> = None;
    let mut nonce = 0u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = it.next().cloned(),
            "--family" => {
                if let Some(f) = it.next() {
                    family = f.clone();
                }
            }
            "--advertise" => advertise = it.next().cloned(),
            "--nonce" => {
                nonce = it.next().and_then(|n| n.parse().ok()).unwrap_or_default();
            }
            _ => return usage(),
        }
    }
    let Some(connect) = connect else {
        return usage();
    };
    match hornet_dist::worker::worker_main(&connect, &family, advertise.as_deref(), nonce) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[worker] error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn host(args: &[String]) -> ExitCode {
    let mut spec = DistSpec {
        width: 16,
        height: 16,
        run: RunKind::Cycles(10_000),
        ..DistSpec::default()
    };
    let mut opts = HostOptions {
        workers: 4,
        ..HostOptions::default()
    };
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_every: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().cloned().unwrap_or_default();
        match a.as_str() {
            "--workers" => {
                let w = next();
                if w.contains(':') {
                    // Host-list mode: pre-started workers at these
                    // data-plane addresses (forces the TCP transport).
                    opts.worker_hosts = Some(w.split(',').map(str::to_string).collect());
                } else {
                    opts.workers = w.parse().unwrap_or(4);
                }
            }
            "--listen" => opts.ctrl_listen = Some(next()),
            "--workload" => {
                let w = next();
                spec.workload = if w == "synthetic" {
                    DistWorkload::Synthetic
                } else if w == "tokenring" {
                    DistWorkload::CpuTokenRing
                } else if let Some(count) = w.strip_prefix("vsum:") {
                    DistWorkload::MemVectorSum {
                        base_stride: 0x1_0000,
                        count: count.parse().unwrap_or(8),
                    }
                } else {
                    return usage();
                };
            }
            "--transport" => {
                let t = next();
                match TransportKind::parse(&t) {
                    Some(k) => opts.transport = k,
                    None => return usage(),
                }
            }
            "--mesh" => {
                let m = next();
                let Some((w, h)) = m.split_once('x') else {
                    return usage();
                };
                spec.width = w.parse().unwrap_or(16);
                spec.height = h.parse().unwrap_or(16);
            }
            "--pattern" => {
                spec.pattern = match next().as_str() {
                    "transpose" => SyntheticPattern::Transpose,
                    "uniform" => SyntheticPattern::UniformRandom,
                    "bitcomp" => SyntheticPattern::BitComplement,
                    "shuffle" => SyntheticPattern::Shuffle,
                    "tornado" => SyntheticPattern::Tornado,
                    "neighbor" => SyntheticPattern::NearestNeighbor,
                    _ => return usage(),
                }
            }
            "--rate" => {
                spec.process = InjectionProcess::Bernoulli {
                    rate: next().parse().unwrap_or(0.05),
                }
            }
            "--cycles" => spec.run = RunKind::Cycles(next().parse().unwrap_or(10_000)),
            "--to-completion" => {
                spec.run = RunKind::ToCompletion {
                    max: next().parse().unwrap_or(1_000_000),
                }
            }
            "--packet-len" => spec.packet_len = next().parse().unwrap_or(4),
            "--max-packets" => spec.max_packets = next().parse().ok(),
            "--seed" => spec.seed = next().parse().unwrap_or(1),
            "--sync" => {
                let s = next();
                spec.sync = if s == "ca" {
                    DistSync::CycleAccurate
                } else if let Some(k) = s.strip_prefix("slack:") {
                    DistSync::Slack(k.parse().unwrap_or(0))
                } else if let Some(n) = s.strip_prefix("periodic:") {
                    DistSync::Periodic(n.parse().unwrap_or(1))
                } else {
                    return usage();
                };
            }
            "--fast-forward" => spec.fast_forward = true,
            "--checkpoint-every" => spec.checkpoint_every = next().parse().ok(),
            "--max-restarts" => opts.max_restarts = next().parse().unwrap_or(2),
            "--metrics-out" => opts.metrics_out = Some(next().into()),
            "--metrics-every" => metrics_every = next().parse().ok(),
            "--http" => opts.http = Some(next()),
            "--trace" => spec.trace_capacity = next().parse().ok(),
            "--trace-out" => trace_out = Some(next()),
            "--json" => json = true,
            "--verbose" => opts.verbose = true,
            _ => return usage(),
        }
    }
    // `--metrics-out` or `--http` alone implies the default sampling period
    // (a live endpoint with no telemetry would have nothing to show); a
    // capacity for `--trace-out` likewise.
    if opts.metrics_out.is_some() || metrics_every.is_some() || opts.http.is_some() {
        spec.telemetry_every = Some(metrics_every.unwrap_or(1_000));
    }
    if trace_out.is_some() && spec.trace_capacity.is_none() {
        spec.trace_capacity = Some(65_536);
    }

    let start = std::time::Instant::now();
    match run_distributed(&spec, &opts) {
        Ok(outcome) => {
            let secs = start.elapsed().as_secs_f64();
            let cps = outcome.final_cycle as f64 / secs.max(1e-9);
            if let Some(path) = &trace_out {
                let mut trace = outcome.trace.clone();
                trace.canonicalize();
                if let Err(e) = std::fs::write(path, trace.to_chrome_trace()) {
                    eprintln!("[host] cannot write trace to {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if json {
                println!(
                    "{{ \"shards\": {}, \"cut_links\": {}, \"final_cycle\": {}, \
                     \"completed\": {}, \"delivered_packets\": {}, \"avg_packet_latency\": {:.3}, \
                     \"cycles_per_sec\": {:.0} }}",
                    outcome.shards,
                    outcome.cut_links,
                    outcome.final_cycle,
                    outcome.completed,
                    outcome.stats.delivered_packets,
                    outcome.stats.avg_packet_latency(),
                    cps
                );
            } else {
                println!(
                    "mesh {}x{} | {} shards ({:?}) | {} cut links | sync {}",
                    spec.width,
                    spec.height,
                    outcome.shards,
                    opts.transport,
                    outcome.cut_links,
                    spec.sync.label()
                );
                println!(
                    "cycle {} | {} packets delivered | avg latency {:.2} | {:.0} cycles/sec",
                    outcome.final_cycle,
                    outcome.stats.delivered_packets,
                    outcome.stats.avg_packet_latency(),
                    cps
                );
                // Per-shard progress/imbalance summary with the causal
                // breakdown from the workers' stall profiles.
                let busy: Vec<u64> = outcome.per_shard.iter().map(|s| s.busy_cycles).collect();
                let max_busy = busy.iter().copied().max().unwrap_or(0) as f64;
                let avg_busy = busy.iter().sum::<u64>() as f64 / busy.len().max(1) as f64;
                println!(
                    "load imbalance {:.3} (busiest shard / average)",
                    if avg_busy > 0.0 {
                        max_busy / avg_busy
                    } else {
                        1.0
                    }
                );
                for (i, p) in outcome.per_shard_profiles.iter().enumerate() {
                    println!(
                        "  shard {i}: {} delivered | {} ({:.1} ms attributed)",
                        outcome.per_shard[i].delivered_packets,
                        p.summary(),
                        p.total_ns() as f64 / 1e6
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[host] error: {e}");
            ExitCode::FAILURE
        }
    }
}
