//! The distributed simulation host binary.
//!
//! ```text
//! hornet-dist host --workers 4 --transport unix --mesh 16x16 \
//!     --pattern transpose --rate 0.05 --cycles 10000 [--sync ca|slack:K|periodic:N]
//! hornet-dist host --workers 4 --to-completion 1000000 --max-packets 50 --fast-forward
//! hornet-dist host --workers 4 --workload vsum:8 --to-completion 400000
//!
//! # Cross-machine (host-list) mode: start one worker per machine first,
//! # then point the coordinator at their data-plane addresses:
//! hornet-dist worker --connect coord:9100 --family tcp --advertise node1:9101
//! hornet-dist host --workers node1:9101,node2:9101 --listen 0.0.0.0:9100 ...
//!
//! hornet-dist worker --connect ADDR --family unix|tcp     (internal)
//! ```
//!
//! `host` partitions the mesh, spawns N copies of this binary in `worker`
//! mode (or waits for the listed remote workers), wires the cut links onto
//! the chosen transport, runs the workload and prints the merged report
//! (optionally as JSON with `--json`).

use hornet_dist::spec::{DistSpec, DistSync, DistWorkload, RunKind};
use hornet_dist::{run_distributed, HostOptions, TransportKind};
use hornet_obs::metrics::TelemetrySample;
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hornet-dist host [--workers N | --workers h1:p,h2:p,...] [--listen ADDR]\n    \
         [--transport unix|tcp|shm] [--mesh WxH]\n    \
         [--workload synthetic|vsum:COUNT|tokenring]\n    \
         [--pattern transpose|uniform|bitcomp|shuffle|tornado|neighbor] [--rate F]\n    \
         [--cycles N | --to-completion MAX] [--packet-len N] [--max-packets N]\n    \
         [--seed N] [--sync ca|slack:K|periodic:N] [--fast-forward]\n    \
         [--checkpoint-every N] [--max-restarts N]\n    \
         [--metrics-out FILE] [--metrics-every N] [--trace CAPACITY] [--trace-out FILE]\n    \
         [--json] [--verbose]\n  \
         hornet-dist worker --connect ADDR --family unix|tcp [--advertise HOST:PORT]\n    \
         [--nonce N]\n  \
         hornet-dist validate-metrics FILE"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker") => worker(&args[1..]),
        Some("host") => host(&args[1..]),
        Some("validate-metrics") => validate_metrics(&args[1..]),
        _ => usage(),
    }
}

/// Checks every line of an NDJSON metrics stream against the telemetry
/// schema; prints a per-file verdict and fails on the first bad line.
fn validate_metrics(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate-metrics: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = TelemetrySample::validate_ndjson_line(line) {
            eprintln!("validate-metrics: {path}:{}: {e}", i + 1);
            return ExitCode::FAILURE;
        }
        n += 1;
    }
    println!("{path}: {n} samples, schema ok");
    ExitCode::SUCCESS
}

fn worker(args: &[String]) -> ExitCode {
    let mut connect = None;
    let mut family = "unix".to_string();
    let mut advertise: Option<String> = None;
    let mut nonce = 0u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = it.next().cloned(),
            "--family" => {
                if let Some(f) = it.next() {
                    family = f.clone();
                }
            }
            "--advertise" => advertise = it.next().cloned(),
            "--nonce" => {
                nonce = it.next().and_then(|n| n.parse().ok()).unwrap_or_default();
            }
            _ => return usage(),
        }
    }
    let Some(connect) = connect else {
        return usage();
    };
    match hornet_dist::worker::worker_main(&connect, &family, advertise.as_deref(), nonce) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[worker] error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn host(args: &[String]) -> ExitCode {
    let mut spec = DistSpec {
        width: 16,
        height: 16,
        run: RunKind::Cycles(10_000),
        ..DistSpec::default()
    };
    let mut opts = HostOptions {
        workers: 4,
        ..HostOptions::default()
    };
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_every: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().cloned().unwrap_or_default();
        match a.as_str() {
            "--workers" => {
                let w = next();
                if w.contains(':') {
                    // Host-list mode: pre-started workers at these
                    // data-plane addresses (forces the TCP transport).
                    opts.worker_hosts = Some(w.split(',').map(str::to_string).collect());
                } else {
                    opts.workers = w.parse().unwrap_or(4);
                }
            }
            "--listen" => opts.ctrl_listen = Some(next()),
            "--workload" => {
                let w = next();
                spec.workload = if w == "synthetic" {
                    DistWorkload::Synthetic
                } else if w == "tokenring" {
                    DistWorkload::CpuTokenRing
                } else if let Some(count) = w.strip_prefix("vsum:") {
                    DistWorkload::MemVectorSum {
                        base_stride: 0x1_0000,
                        count: count.parse().unwrap_or(8),
                    }
                } else {
                    return usage();
                };
            }
            "--transport" => {
                let t = next();
                match TransportKind::parse(&t) {
                    Some(k) => opts.transport = k,
                    None => return usage(),
                }
            }
            "--mesh" => {
                let m = next();
                let Some((w, h)) = m.split_once('x') else {
                    return usage();
                };
                spec.width = w.parse().unwrap_or(16);
                spec.height = h.parse().unwrap_or(16);
            }
            "--pattern" => {
                spec.pattern = match next().as_str() {
                    "transpose" => SyntheticPattern::Transpose,
                    "uniform" => SyntheticPattern::UniformRandom,
                    "bitcomp" => SyntheticPattern::BitComplement,
                    "shuffle" => SyntheticPattern::Shuffle,
                    "tornado" => SyntheticPattern::Tornado,
                    "neighbor" => SyntheticPattern::NearestNeighbor,
                    _ => return usage(),
                }
            }
            "--rate" => {
                spec.process = InjectionProcess::Bernoulli {
                    rate: next().parse().unwrap_or(0.05),
                }
            }
            "--cycles" => spec.run = RunKind::Cycles(next().parse().unwrap_or(10_000)),
            "--to-completion" => {
                spec.run = RunKind::ToCompletion {
                    max: next().parse().unwrap_or(1_000_000),
                }
            }
            "--packet-len" => spec.packet_len = next().parse().unwrap_or(4),
            "--max-packets" => spec.max_packets = next().parse().ok(),
            "--seed" => spec.seed = next().parse().unwrap_or(1),
            "--sync" => {
                let s = next();
                spec.sync = if s == "ca" {
                    DistSync::CycleAccurate
                } else if let Some(k) = s.strip_prefix("slack:") {
                    DistSync::Slack(k.parse().unwrap_or(0))
                } else if let Some(n) = s.strip_prefix("periodic:") {
                    DistSync::Periodic(n.parse().unwrap_or(1))
                } else {
                    return usage();
                };
            }
            "--fast-forward" => spec.fast_forward = true,
            "--checkpoint-every" => spec.checkpoint_every = next().parse().ok(),
            "--max-restarts" => opts.max_restarts = next().parse().unwrap_or(2),
            "--metrics-out" => opts.metrics_out = Some(next().into()),
            "--metrics-every" => metrics_every = next().parse().ok(),
            "--trace" => spec.trace_capacity = next().parse().ok(),
            "--trace-out" => trace_out = Some(next()),
            "--json" => json = true,
            "--verbose" => opts.verbose = true,
            _ => return usage(),
        }
    }
    // `--metrics-out` alone implies the default sampling period; a capacity
    // for `--trace-out` likewise.
    if opts.metrics_out.is_some() || metrics_every.is_some() {
        spec.telemetry_every = Some(metrics_every.unwrap_or(1_000));
    }
    if trace_out.is_some() && spec.trace_capacity.is_none() {
        spec.trace_capacity = Some(65_536);
    }

    let start = std::time::Instant::now();
    match run_distributed(&spec, &opts) {
        Ok(outcome) => {
            let secs = start.elapsed().as_secs_f64();
            let cps = outcome.final_cycle as f64 / secs.max(1e-9);
            if let Some(path) = &trace_out {
                let mut trace = outcome.trace.clone();
                trace.canonicalize();
                if let Err(e) = std::fs::write(path, trace.to_chrome_trace()) {
                    eprintln!("[host] cannot write trace to {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if json {
                println!(
                    "{{ \"shards\": {}, \"cut_links\": {}, \"final_cycle\": {}, \
                     \"completed\": {}, \"delivered_packets\": {}, \"avg_packet_latency\": {:.3}, \
                     \"cycles_per_sec\": {:.0} }}",
                    outcome.shards,
                    outcome.cut_links,
                    outcome.final_cycle,
                    outcome.completed,
                    outcome.stats.delivered_packets,
                    outcome.stats.avg_packet_latency(),
                    cps
                );
            } else {
                println!(
                    "mesh {}x{} | {} shards ({:?}) | {} cut links | sync {}",
                    spec.width,
                    spec.height,
                    outcome.shards,
                    opts.transport,
                    outcome.cut_links,
                    spec.sync.label()
                );
                println!(
                    "cycle {} | {} packets delivered | avg latency {:.2} | {:.0} cycles/sec",
                    outcome.final_cycle,
                    outcome.stats.delivered_packets,
                    outcome.stats.avg_packet_latency(),
                    cps
                );
                // Per-shard progress/imbalance summary with the causal
                // breakdown from the workers' stall profiles.
                let busy: Vec<u64> = outcome.per_shard.iter().map(|s| s.busy_cycles).collect();
                let max_busy = busy.iter().copied().max().unwrap_or(0) as f64;
                let avg_busy = busy.iter().sum::<u64>() as f64 / busy.len().max(1) as f64;
                println!(
                    "load imbalance {:.3} (busiest shard / average)",
                    if avg_busy > 0.0 {
                        max_busy / avg_busy
                    } else {
                        1.0
                    }
                );
                for (i, p) in outcome.per_shard_profiles.iter().enumerate() {
                    println!(
                        "  shard {i}: {} delivered | {} ({:.1} ms attributed)",
                        outcome.per_shard[i].delivered_packets,
                        p.summary(),
                        p.total_ns() as f64 / 1e6
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[host] error: {e}");
            ExitCode::FAILURE
        }
    }
}
