//! Pluggable boundary transports.
//!
//! A [`BoundaryTransport`] carries everything that crosses one shard-to-shard
//! adjacency: cycle-stamped flits (forward), credit returns (backward), and
//! the sender's negedge progress, which is what the conservative
//! synchronization protocol waits on. Three implementations exist:
//!
//! * [`InProcTransport`] — the thread backend's native form: the SPSC
//!   boundary rings are shared directly between the two shard loops, so
//!   `pump` only publishes a progress atomic and `ingest` is a no-op. Zero
//!   additional copies, zero syscalls.
//! * [`crate::shm::ShmTransport`] — co-located processes share a mapped
//!   segment holding one SPSC ring per channel plus the progress words;
//!   `pump`/`ingest` copy between the local staging rings and the segment.
//! * [`SocketTransport`] — one length-prefixed frame per cycle per direction
//!   over a Unix or TCP stream; a reader thread drains the socket into the
//!   local staging rings and publishes the peer's progress mirror.
//!
//! The contract every implementation upholds, which is what makes
//! CycleAccurate bit-identity hold across processes: *all flits and credits a
//! shard emitted up to and including its negedge of cycle `c` are visible to
//! the peer's `ingest` before the peer observes `peer_progress() ≥ c`.*

use crate::wire::{
    decode_credit, decode_flit, decode_packet, encode_credit, encode_flit, encode_packet,
    read_frame, write_frame, Dec, Enc,
};
use crate::wiring::NeighborWiring;
use hornet_net::boundary::{BoundaryLink, CreditMsg};
use hornet_net::flit::Flit;
use hornet_net::ids::Cycle;
use hornet_shard::driver::{PayloadChannel, TransportPump};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One directed shard adjacency's channel: flits forward, credits backward,
/// progress alongside. See the module docs for the visibility contract.
pub trait BoundaryTransport: Send {
    /// Called after the local negedge of `cycle`: make every staged outbound
    /// flit, credit and payload visible to the peer, then publish `cycle` as
    /// this side's progress. `flush` forces buffered wire traffic out;
    /// transports may otherwise coalesce several cycles per write under
    /// loose synchronization.
    fn pump(&mut self, cycle: Cycle, payloads: &dyn PayloadChannel, flush: bool) -> io::Result<()>;

    /// Called after the progress wait, before mailbox consumption: move
    /// everything the peer has made visible into the local staging rings and
    /// deposit any arrived payloads. No-op for transports whose rings are
    /// shared directly.
    fn ingest(&mut self, _payloads: &dyn PayloadChannel) {}

    /// The peer's last published negedge progress (`u64::MAX` once the peer
    /// has finished its run and closed the channel).
    fn peer_progress(&self) -> Cycle;
}

/// Adapts one shard's per-adjacency [`BoundaryTransport`]s to the unified
/// driver's [`TransportPump`] (the driver talks to *all* neighbors at once).
pub struct TransportSet<'a>(pub &'a mut [Box<dyn BoundaryTransport>]);

impl TransportPump for TransportSet<'_> {
    fn peers_reached(&self, floor: Cycle) -> bool {
        self.0.iter().all(|t| t.peer_progress() >= floor)
    }

    fn ingest(&mut self, payloads: &dyn PayloadChannel) {
        for t in self.0.iter_mut() {
            t.ingest(payloads);
        }
    }

    fn pump(&mut self, cycle: Cycle, payloads: &dyn PayloadChannel, flush: bool) -> io::Result<()> {
        for t in self.0.iter_mut() {
            t.pump(cycle, payloads, flush)?;
        }
        Ok(())
    }

    fn publish_jump(&mut self, target: Cycle, payloads: &dyn PayloadChannel) -> io::Result<()> {
        self.pump(target, payloads, true)
    }

    fn stall_report(&self) -> String {
        format!(
            "mirrors={:?}",
            self.0.iter().map(|t| t.peer_progress()).collect::<Vec<_>>()
        )
    }
}

/// Spin-pushes with backoff; panics after an implausible number of retries
/// (end-to-end credits bound ring occupancy, so a persistently full ring is a
/// protocol violation, not backpressure).
fn push_or_die(mut push: impl FnMut() -> bool, what: &str) {
    let mut spins = 0u64;
    while !push() {
        spins += 1;
        if spins == 1_000_000 {
            eprintln!("[transport] ring full for a while ({what})");
        }
        if spins.is_multiple_of(128) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
        assert!(
            spins < 1 << 30,
            "boundary transport ring stuck full ({what}): protocol violation"
        );
    }
}

/// The in-process transport: both shard loops share the staging rings, so
/// the data plane needs no pumping at all — only the progress word.
pub struct InProcTransport {
    local: Arc<AtomicU64>,
    peer: Arc<AtomicU64>,
}

impl InProcTransport {
    /// Creates the transport pair for one adjacency `(a→b, b→a)`, starting
    /// both progress words at `start`.
    pub fn pair(start: Cycle) -> (InProcTransport, InProcTransport) {
        let a = Arc::new(AtomicU64::new(start));
        let b = Arc::new(AtomicU64::new(start));
        (
            InProcTransport {
                local: Arc::clone(&a),
                peer: Arc::clone(&b),
            },
            InProcTransport { local: b, peer: a },
        )
    }
}

impl BoundaryTransport for InProcTransport {
    fn pump(
        &mut self,
        cycle: Cycle,
        _payloads: &dyn PayloadChannel,
        _flush: bool,
    ) -> io::Result<()> {
        self.local.store(cycle, Ordering::Release);
        Ok(())
    }

    fn peer_progress(&self) -> Cycle {
        self.peer.load(Ordering::Acquire)
    }
}

/// A bidirectional byte stream: Unix domain or TCP.
pub enum Stream {
    /// Unix domain stream socket.
    #[cfg(unix)]
    Unix(UnixStream),
    /// TCP stream (loopback or cross-machine).
    Tcp(TcpStream),
}

impl Stream {
    /// Clones the underlying socket handle.
    pub fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    /// Disables Nagle batching on TCP (cycle frames are latency-critical).
    pub fn tune(&self) {
        if let Stream::Tcp(s) = self {
            let _ = s.set_nodelay(true);
        }
    }

    /// Shuts the socket down (both halves, affecting every cloned handle) —
    /// the only reliable way to signal EOF when reader threads hold clones.
    pub fn shutdown(&self) {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// The socket transport: one frame per simulated cycle per direction,
/// carrying `(progress, payloads, flits, credits)`. A reader thread drains
/// the peer's frames into the local staging rings — payloads, flits and
/// credits strictly before the progress store, which is what keeps
/// strict-mode consumption exact.
///
/// Under loose synchronization (`batch > 1`) the per-cycle frames are still
/// written, but the underlying socket is only flushed once `batch` cycles
/// have accumulated since the last flush (or on `flush`), cutting syscall
/// volume ~`batch`×. This is deadlock-free because a shard with slack `k`
/// (or a `k`-cycle batch quantum) never needs a neighbor's progress more
/// than `k` cycles stale, and the rolling window guarantees at most `k - 1`
/// cycles are ever buffered — regardless of where fast-forward jumps land
/// the clocks (an absolute `cycle % k` rule would skew against post-jump
/// batch boundaries and wedge zero-slack Periodic runs).
pub struct SocketTransport {
    writer: BufWriter<Stream>,
    /// Outbound halves (drained into frames).
    out_links: Vec<Arc<BoundaryLink>>,
    /// Inbound halves (their staged credits are drained into frames).
    in_links: Vec<Arc<BoundaryLink>>,
    peer_progress: Arc<AtomicU64>,
    reader: Option<JoinHandle<()>>,
    /// Cycles coalesced per socket flush (1 = flush every cycle).
    batch: u64,
    /// Cycle of the last actual socket flush (rolling batch window).
    last_flush: Cycle,
    /// Reusable frame scratch.
    flits: Vec<(u32, Flit)>,
    credits: Vec<(u32, CreditMsg)>,
    packets: Vec<hornet_net::flit::Packet>,
}

impl SocketTransport {
    /// Wraps `stream` as the transport for one adjacency described by
    /// `wiring`, flushing the socket every `batch` cycles (`CycleAccurate`
    /// runs use 1: one syscall per cycle per direction is latency-optimal
    /// there). `payloads` is handed to the reader thread so arriving packet
    /// payloads are deposited before their tail flits become visible.
    /// Spawns the reader thread immediately.
    pub fn new(
        stream: Stream,
        wiring: &NeighborWiring,
        start: Cycle,
        batch: u64,
        payloads: Arc<dyn PayloadChannel>,
    ) -> io::Result<Self> {
        stream.tune();
        let writer = BufWriter::with_capacity(64 << 10, stream.try_clone()?);
        let peer_progress = Arc::new(AtomicU64::new(start));
        let reader = {
            let progress = Arc::clone(&peer_progress);
            let in_links: Vec<Arc<BoundaryLink>> = wiring.in_links.clone();
            let out_links: Vec<Arc<BoundaryLink>> = wiring.out_links.clone();
            let mut reader = BufReader::new(stream);
            std::thread::Builder::new()
                .name("hornet-dist-rx".into())
                .spawn(move || loop {
                    let frame = match read_frame(&mut reader) {
                        Ok(f) => f,
                        Err(_) => {
                            // Peer closed: it has finished its run; nothing
                            // we could still wait on.
                            progress.store(u64::MAX, Ordering::Release);
                            return;
                        }
                    };
                    if decode_cycle_frame(&frame, &in_links, &out_links, &*payloads, &progress)
                        .is_err()
                    {
                        progress.store(u64::MAX, Ordering::Release);
                        return;
                    }
                })?
        };
        Ok(Self {
            writer,
            out_links: wiring.out_links.clone(),
            in_links: wiring.in_links.clone(),
            peer_progress,
            reader: Some(reader),
            batch: batch.max(1),
            last_flush: start,
            flits: Vec::new(),
            credits: Vec::new(),
            packets: Vec::new(),
        })
    }
}

/// Decodes one cycle frame into the staging rings: payloads deposited first,
/// then flits, then credits, progress last.
fn decode_cycle_frame(
    frame: &[u8],
    in_links: &[Arc<BoundaryLink>],
    out_links: &[Arc<BoundaryLink>],
    payloads: &dyn PayloadChannel,
    progress: &AtomicU64,
) -> io::Result<()> {
    let mut d = Dec::new(frame);
    let cycle = d.u64()?;
    let n_payloads = d.u32()?;
    for _ in 0..n_payloads {
        payloads.deposit(decode_packet(&mut d)?);
    }
    let n_flits = d.u32()?;
    for _ in 0..n_flits {
        let ch = d.u32()? as usize;
        let flit = decode_flit(&mut d)?;
        let link = in_links
            .get(ch)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad channel"))?;
        push_or_die(|| link.inject_flit(flit), "socket rx flit");
    }
    let n_credits = d.u32()?;
    for _ in 0..n_credits {
        let ch = d.u32()? as usize;
        let credit = decode_credit(&mut d)?;
        let link = out_links
            .get(ch)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad channel"))?;
        push_or_die(|| link.inject_credit(credit), "socket rx credit");
    }
    progress.store(cycle, Ordering::Release);
    Ok(())
}

impl BoundaryTransport for SocketTransport {
    fn pump(&mut self, cycle: Cycle, payloads: &dyn PayloadChannel, flush: bool) -> io::Result<()> {
        self.flits.clear();
        self.credits.clear();
        self.packets.clear();
        let forward_payloads = !payloads.shared();
        for (ch, link) in self.out_links.iter().enumerate() {
            let flits = &mut self.flits;
            let packets = &mut self.packets;
            link.drain_staged_flits(|f| {
                if forward_payloads && f.kind.is_tail() {
                    // The payload follows its tail flit hop by hop; empty
                    // payloads are claimed too (the parked packet would leak
                    // otherwise) but reconstructed at the destination instead
                    // of crossing the wire.
                    if let Some(p) = payloads.claim(f.packet) {
                        if !p.payload.is_empty() {
                            packets.push(p);
                        }
                    }
                }
                flits.push((ch as u32, f));
            });
        }
        for (ch, link) in self.in_links.iter().enumerate() {
            while let Some(c) = link.take_staged_credit() {
                self.credits.push((ch as u32, c));
            }
        }
        let mut e = Enc::new();
        e.u64(cycle);
        e.u32(self.packets.len() as u32);
        for p in &self.packets {
            encode_packet(&mut e, p);
        }
        e.u32(self.flits.len() as u32);
        for (ch, f) in &self.flits {
            e.u32(*ch);
            encode_flit(&mut e, f);
        }
        e.u32(self.credits.len() as u32);
        for (ch, c) in &self.credits {
            e.u32(*ch);
            encode_credit(&mut e, c);
        }
        write_frame(&mut self.writer, e.bytes())?;
        // Rolling window, not absolute multiples: fast-forward jumps land
        // clocks on arbitrary cycles, and the peer's batch-boundary wait
        // must never outrun our flush cadence.
        if flush || cycle >= self.last_flush.saturating_add(self.batch) {
            self.writer.flush()?;
            self.last_flush = cycle;
        }
        Ok(())
    }

    fn peer_progress(&self) -> Cycle {
        self.peer_progress.load(Ordering::Acquire)
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        // Closing the writer half signals EOF to the peer's reader; the
        // local reader thread exits on its own EOF. Detach rather than join:
        // the peer may close later.
        if let Some(handle) = self.reader.take() {
            drop(handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornet_net::flit::{FlitKind, FlitStats};
    use hornet_net::ids::{FlowId, NodeId, PacketId};

    fn flit(seq: u32, visible_at: Cycle) -> Flit {
        Flit {
            packet: PacketId::new(1),
            flow: FlowId::new(1),
            original_flow: FlowId::new(1),
            kind: FlitKind::Body,
            seq,
            packet_len: 8,
            dst: NodeId::new(1),
            src: NodeId::new(0),
            visible_at,
            stats: FlitStats::default(),
        }
    }

    fn adjacency(vcs: usize, cap: usize) -> (NeighborWiring, NeighborWiring) {
        // a→b channels and b→a channels, as two local wiring views.
        let ab: Vec<Arc<BoundaryLink>> = (0..vcs).map(|_| BoundaryLink::new(cap)).collect();
        let ba: Vec<Arc<BoundaryLink>> = (0..vcs).map(|_| BoundaryLink::new(cap)).collect();
        (
            NeighborWiring {
                peer: 1,
                out_links: ab.clone(),
                in_links: ba.clone(),
            },
            NeighborWiring {
                peer: 0,
                out_links: ba,
                in_links: ab,
            },
        )
    }

    use hornet_shard::driver::NoPayloads;

    #[test]
    fn in_proc_transport_publishes_progress() {
        let (mut a, b) = InProcTransport::pair(0);
        assert_eq!(b.peer_progress(), 0);
        a.pump(7, &NoPayloads, true).unwrap();
        assert_eq!(b.peer_progress(), 7);
        assert_eq!(a.peer_progress(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn socket_transport_carries_flits_credits_and_progress() {
        let (sa, sb) = UnixStream::pair().unwrap();
        // Side A's local halves and side B's local halves are *distinct*
        // objects; the wire connects them.
        let (wa, _) = adjacency(2, 4);
        let (_, wb) = adjacency(2, 4);
        let mut ta =
            SocketTransport::new(Stream::Unix(sa), &wa, 0, 1, Arc::new(NoPayloads)).unwrap();
        let mut tb =
            SocketTransport::new(Stream::Unix(sb), &wb, 0, 1, Arc::new(NoPayloads)).unwrap();

        // A sends two flits on channel 1 (credit-checked push) and pumps.
        assert!(wa.out_links[1].push(flit(0, 5)));
        assert!(wa.out_links[1].push(flit(1, 5)));
        ta.pump(4, &NoPayloads, true).unwrap();

        // B sees progress 4 and the flits in its inbound half of channel 1.
        let mut spins = 0;
        while tb.peer_progress() < 4 {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 1_000_000, "progress never arrived");
        }
        tb.ingest(&NoPayloads); // no-op for sockets; reader already delivered
        assert_eq!(wb.in_links[1].in_flight(), 2);

        // B returns a credit; A folds it in after its reader delivers.
        push_or_die(
            || wb.in_links[1].inject_credit(CreditMsg { cycle: 5, count: 2 }),
            "test credit",
        );
        // Move the staged credit onto the wire.
        tb.pump(5, &NoPayloads, true).unwrap();
        let mut spins = 0;
        while ta.peer_progress() < 5 {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 1_000_000, "credit frame never arrived");
        }
        // The two pushed flits held 2 units of the window; the credit frees
        // them once applied.
        wa.out_links[1].apply_credits(None);
        assert_eq!(wa.out_links[1].occupancy(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn socket_transport_forwards_payloads_with_tail_flits() {
        use hornet_net::flit::{Packet, Payload};
        use hornet_net::payload::PayloadStore;
        use hornet_shard::driver::{PayloadChannel, PayloadEndpoint};

        let (sa, sb) = UnixStream::pair().unwrap();
        let (wa, _) = adjacency(1, 4);
        let (_, wb) = adjacency(1, 4);
        let store_a = Arc::new(PayloadStore::new());
        let store_b = Arc::new(PayloadStore::new());
        let ep_a = PayloadEndpoint::remote(Arc::clone(&store_a));
        let ep_b = PayloadEndpoint::remote(Arc::clone(&store_b));
        let mut ta =
            SocketTransport::new(Stream::Unix(sa), &wa, 0, 1, Arc::new(ep_a.clone())).unwrap();
        let _tb =
            SocketTransport::new(Stream::Unix(sb), &wb, 0, 1, Arc::new(ep_b.clone())).unwrap();

        // A parks a packet's payload (what the bridge does at injection) and
        // pushes its tail flit onto the boundary.
        let packet = Packet::new(
            PacketId::new(1),
            FlowId::new(1),
            NodeId::new(0),
            NodeId::new(1),
            2,
            0,
        )
        .with_payload(Payload::from_words(&[0xfeed, 0xbead]));
        store_a.deposit(packet.clone());
        let mut tail = flit(1, 5);
        tail.kind = FlitKind::Tail;
        assert!(wa.out_links[0].push(flit(0, 5)));
        assert!(wa.out_links[0].push(tail));
        ta.pump(4, &ep_a, true).unwrap();

        // The claim emptied A's store; B's reader deposits the payload
        // before publishing progress 4.
        assert!(store_a.is_empty(), "tail crossing must claim the payload");
        let mut spins = 0;
        while _tb.peer_progress() < 4 {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 1_000_000, "frame never arrived");
        }
        assert_eq!(ep_b.claim(PacketId::new(1)), Some(packet));
    }

    #[cfg(unix)]
    #[test]
    fn socket_batching_coalesces_flushes_but_flush_forces_visibility() {
        let (sa, sb) = UnixStream::pair().unwrap();
        let (wa, _) = adjacency(1, 4);
        let (_, wb) = adjacency(1, 4);
        // Flush every 4 cycles.
        let mut ta =
            SocketTransport::new(Stream::Unix(sa), &wa, 0, 4, Arc::new(NoPayloads)).unwrap();
        let tb = SocketTransport::new(Stream::Unix(sb), &wb, 0, 4, Arc::new(NoPayloads)).unwrap();

        for c in 1..=3u64 {
            ta.pump(c, &NoPayloads, false).unwrap();
        }
        // Nothing flushed yet (cycles 1..3, batch 4): give the wire a moment
        // and check progress stayed put.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(tb.peer_progress(), 0, "frames must still be buffered");
        // Cycle 4 is a batch boundary: everything lands.
        assert!(wa.out_links[0].push(flit(0, 4)));
        ta.pump(4, &NoPayloads, false).unwrap();
        let mut spins = 0;
        while tb.peer_progress() < 4 {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 1_000_000, "batched frames never flushed");
        }
        assert_eq!(wb.in_links[0].in_flight(), 1);
        // An explicit flush forces mid-batch visibility.
        ta.pump(5, &NoPayloads, true).unwrap();
        let mut spins = 0;
        while tb.peer_progress() < 5 {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 1_000_000, "forced flush never arrived");
        }
    }

    #[cfg(unix)]
    #[test]
    fn socket_peer_close_reads_as_infinite_progress() {
        let (sa, sb) = UnixStream::pair().unwrap();
        let (wa, _) = adjacency(1, 2);
        let ta = SocketTransport::new(Stream::Unix(sa), &wa, 0, 1, Arc::new(NoPayloads)).unwrap();
        drop(sb);
        let mut spins = 0;
        while ta.peer_progress() != u64::MAX {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 1_000_000, "EOF never observed");
        }
    }
}
