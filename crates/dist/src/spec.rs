//! The distributed workload specification.
//!
//! A [`DistSpec`] is everything a worker process needs to rebuild its slice
//! of the simulated system bit-exactly: mesh geometry, router parameters,
//! routing/VCA algorithms, the synthetic traffic workload, the master seed,
//! the synchronization mode and the run shape. The coordinator serializes
//! the spec once and ships it to every worker; each worker deterministically
//! reconstructs the *full* network (per-tile PRNG seeds are derived from the
//! master seed, so construction is cheap and identical everywhere) and keeps
//! only the tiles its shard owns.

use crate::wire::{Dec, Enc};
use hornet_cpu::agent::{CoreAgent, CoreConfig};
use hornet_cpu::programs::{token_ring_program, vector_sum_program};
use hornet_net::config::{ConfigError, NetworkConfig};
use hornet_net::geometry::Geometry;
use hornet_net::ids::NodeId;
use hornet_net::kernel::KernelMode;
use hornet_net::network::Network;
use hornet_net::routing::{FlowSpec, RoutingKind};
use hornet_net::stats::NetworkStats;
use hornet_net::vca::VcAllocKind;
use hornet_traffic::injector::{flows_for_pattern, SyntheticConfig, SyntheticInjector};
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use std::io;
use std::sync::Arc;

/// Synchronization mode of a distributed run (mirrors the engine's
/// `SyncMode` without depending on `hornet-core`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DistSync {
    /// Lock-step neighbor synchronization with strict cycle-stamped
    /// transport consumption: bit-identical to sequential simulation.
    CycleAccurate,
    /// Neighbors may drift up to `k` cycles apart.
    Slack(u64),
    /// Drift checks batched every `n` cycles.
    Periodic(u64),
}

impl DistSync {
    /// `(slack, quantum, strict)` for the worker loop. (The thread backend's
    /// `barrier_batches` re-zeroing has no distributed equivalent — periodic
    /// batches stay neighbor-synchronized.)
    pub fn params(self) -> (u64, u64, bool) {
        match self {
            DistSync::CycleAccurate => (0, 1, true),
            DistSync::Slack(k) => (k, 1, k == 0),
            DistSync::Periodic(n) => {
                let n = n.max(1);
                (0, n, n == 1)
            }
        }
    }

    /// Short label for reports.
    pub fn label(self) -> String {
        match self {
            DistSync::CycleAccurate => "cycle-accurate".into(),
            DistSync::Slack(k) => format!("slack-{k}"),
            DistSync::Periodic(n) => format!("sync-every-{n}"),
        }
    }
}

/// What runs on the tiles.
///
/// Every variant is rebuilt deterministically from the spec alone, so all
/// worker processes construct identical agents. Payload-bearing workloads
/// (the memory hierarchy and the MIPS-like cores) work across process
/// boundaries because packet payloads travel the boundary transports with
/// their tail flits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DistWorkload {
    /// Synthetic pattern/process injectors, configured by the spec's
    /// `pattern`/`process`/`packet_len`/`max_packets`/`stop_after` fields.
    Synthetic,
    /// One MIPS-like core per tile running the vector-sum program over MSI
    /// coherence: node `i` stores and re-loads `count` words from
    /// `base_stride * (i + 1)`, whose lines are interleaved across all
    /// tiles — every miss crosses the network with a protocol payload.
    MemVectorSum {
        /// Per-node base address stride.
        base_stride: u64,
        /// Words per node.
        count: u64,
    },
    /// One MIPS-like core per tile passing a token once around the ring of
    /// all nodes (user-level MPI-style payloads).
    CpuTokenRing,
}

impl DistWorkload {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DistWorkload::Synthetic => "synthetic",
            DistWorkload::MemVectorSum { .. } => "mem-vector-sum",
            DistWorkload::CpuTokenRing => "cpu-token-ring",
        }
    }
}

/// The shape of a run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunKind {
    /// Simulate exactly this many cycles.
    Cycles(u64),
    /// Run until every agent completes and the network drains (detected by
    /// credit-counting termination), bounded by `max` cycles.
    ToCompletion {
        /// Upper bound on simulated cycles.
        max: u64,
    },
}

/// A complete distributed workload description.
#[derive(Clone, Debug, PartialEq)]
pub struct DistSpec {
    /// Mesh width.
    pub width: u32,
    /// Mesh height.
    pub height: u32,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// VC allocation algorithm.
    pub vca: VcAllocKind,
    /// Virtual channels per router-facing port.
    pub vcs_per_port: u32,
    /// Depth of each router-facing VC buffer, in flits.
    pub vc_capacity: u32,
    /// Virtual channels on the injection port.
    pub injection_vcs: u32,
    /// Depth of each injection VC buffer.
    pub injection_vc_capacity: u32,
    /// Link bandwidth in flits/cycle.
    pub link_bandwidth: u32,
    /// Ejection bandwidth in flits/cycle.
    pub ejection_bandwidth: u32,
    /// What runs on the tiles.
    pub workload: DistWorkload,
    /// Synthetic destination pattern.
    pub pattern: SyntheticPattern,
    /// Injection process.
    pub process: InjectionProcess,
    /// Packet length in flits.
    pub packet_len: u32,
    /// Per-node cap on offered packets.
    pub max_packets: Option<u64>,
    /// Stop offering packets after this cycle.
    pub stop_after: Option<u64>,
    /// Master seed (per-tile PRNGs derive from it).
    pub seed: u64,
    /// Synchronization mode.
    pub sync: DistSync,
    /// Run shape.
    pub run: RunKind,
    /// Skip idle periods by jumping all clocks to the next event.
    pub fast_forward: bool,
    /// Capture a resumable checkpoint every this many cycles (strict modes
    /// only — loose synchronization has no consistent rendezvous cut).
    pub checkpoint_every: Option<u64>,
    /// Ship a telemetry sample to the coordinator every this many cycles.
    pub telemetry_every: Option<u64>,
    /// Per-tile event-trace ring capacity (tracing off when `None`).
    pub trace_capacity: Option<u32>,
    /// Compiled-kernel selection for the shard hot loop (bit-identical to
    /// the interpreter either way; ineligible configurations fall back).
    pub kernel: KernelMode,
}

impl Default for DistSpec {
    fn default() -> Self {
        Self {
            width: 8,
            height: 8,
            routing: RoutingKind::Xy,
            vca: VcAllocKind::Dynamic,
            vcs_per_port: 4,
            vc_capacity: 4,
            injection_vcs: 4,
            injection_vc_capacity: 8,
            link_bandwidth: 1,
            ejection_bandwidth: 1,
            workload: DistWorkload::Synthetic,
            pattern: SyntheticPattern::Transpose,
            process: InjectionProcess::Bernoulli { rate: 0.05 },
            packet_len: 4,
            max_packets: None,
            stop_after: None,
            seed: 1,
            sync: DistSync::CycleAccurate,
            run: RunKind::Cycles(1_000),
            fast_forward: false,
            checkpoint_every: None,
            telemetry_every: None,
            trace_capacity: None,
            kernel: KernelMode::Auto,
        }
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl DistSpec {
    /// Total tile count.
    pub fn node_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Whether this run needs the coordinator's termination detector.
    pub fn needs_detector(&self) -> bool {
        self.fast_forward || matches!(self.run, RunKind::ToCompletion { .. })
    }

    /// The cycle budget of the run.
    pub fn cycle_budget(&self) -> u64 {
        match self.run {
            RunKind::Cycles(n) => n,
            RunKind::ToCompletion { max } => max,
        }
    }

    /// `(slack, quantum)` headroom of the sync mode — how many cycles of
    /// per-cycle traffic a transport may see coalesced between batch
    /// ingests. Sizes shared-memory credit rings.
    pub fn sync_depth(&self) -> usize {
        let (slack, quantum, _) = self.sync.params();
        (slack + quantum) as usize
    }

    /// Cycles a socket transport may coalesce per flush: 1 (latency-optimal)
    /// for the bit-exact lock-step modes, the drift bound for loose modes.
    pub fn socket_batch(&self) -> u64 {
        let (slack, quantum, strict) = self.sync.params();
        if strict {
            1
        } else {
            slack.max(quantum).max(1)
        }
    }

    /// Builds the network configuration this spec describes.
    pub fn network_config(&self) -> NetworkConfig {
        let geometry = Geometry::mesh2d(self.width as usize, self.height as usize);
        let flows = match &self.workload {
            // Memory/CPU workloads route protocol traffic between arbitrary
            // pairs (directory homes are interleaved over all tiles).
            DistWorkload::MemVectorSum { .. } | DistWorkload::CpuTokenRing => {
                FlowSpec::all_to_all(&geometry)
            }
            DistWorkload::Synthetic => flows_for_pattern(&self.pattern, &geometry),
        };
        let mut cfg = NetworkConfig::new(geometry)
            .with_routing(self.routing)
            .with_vca(self.vca)
            .with_flows(flows);
        cfg.vcs_per_port = self.vcs_per_port as usize;
        cfg.vc_capacity = self.vc_capacity as usize;
        cfg.injection_vcs = self.injection_vcs as usize;
        cfg.injection_vc_capacity = self.injection_vc_capacity as usize;
        cfg.link_bandwidth = self.link_bandwidth;
        cfg.ejection_bandwidth = self.ejection_bandwidth;
        cfg
    }

    /// Builds the full network with one workload agent per tile —
    /// deterministic in `seed`, so every process reconstructs identical
    /// state.
    pub fn build_network(&self) -> Result<Network, ConfigError> {
        let cfg = self.network_config();
        let geometry = Arc::new(cfg.geometry.clone());
        let mut network = Network::new(&cfg, self.seed)?;
        let nodes = self.node_count();
        for node in geometry.nodes() {
            let agent: Box<dyn hornet_net::agent::NodeAgent> = match &self.workload {
                DistWorkload::Synthetic => Box::new(SyntheticInjector::new(
                    Arc::clone(&geometry),
                    SyntheticConfig {
                        pattern: self.pattern.clone(),
                        process: self.process,
                        packet_len: self.packet_len,
                        stop_after: self.stop_after,
                        max_packets: self.max_packets,
                    },
                )),
                DistWorkload::MemVectorSum { base_stride, count } => Box::new(CoreAgent::new(
                    node,
                    nodes,
                    vector_sum_program(base_stride * (node.raw() as u64 + 1), *count),
                    CoreConfig::default(),
                )),
                DistWorkload::CpuTokenRing => Box::new(CoreAgent::new(
                    node,
                    nodes,
                    token_ring_program(node.index(), nodes),
                    CoreConfig::default(),
                )),
            };
            network.attach_agent(node, agent);
        }
        Ok(network)
    }

    /// Runs this workload sequentially in the current process — the
    /// reference every distributed CycleAccurate run must reproduce
    /// bit-exactly. Returns `(stats, final_cycle, completed)`.
    pub fn run_sequential(&self) -> Result<(NetworkStats, u64, bool), ConfigError> {
        let mut network = self.build_network()?;
        network.set_fast_forward(self.fast_forward);
        let completed = match self.run {
            RunKind::Cycles(n) => {
                network.run(n);
                true
            }
            RunKind::ToCompletion { max } => network.run_to_completion(max),
        };
        Ok((network.stats(), network.cycle(), completed))
    }

    /// Encodes the spec for the wire.
    pub fn encode(&self, e: &mut Enc) {
        e.u32(self.width).u32(self.height);
        e.u8(match self.routing {
            RoutingKind::Xy => 0,
            RoutingKind::Yx => 1,
            RoutingKind::O1Turn => 2,
            RoutingKind::Valiant => 3,
            RoutingKind::Romm => 4,
            RoutingKind::Prom => 5,
            RoutingKind::StaticLoadBalanced => 6,
            RoutingKind::AdaptiveMinimal => 7,
        });
        e.u8(match self.vca {
            VcAllocKind::Dynamic => 0,
            VcAllocKind::StaticSet => 1,
            VcAllocKind::Phased => 2,
            VcAllocKind::Edvca => 3,
            VcAllocKind::Faa => 4,
            VcAllocKind::Table => 5,
        });
        e.u32(self.vcs_per_port)
            .u32(self.vc_capacity)
            .u32(self.injection_vcs)
            .u32(self.injection_vc_capacity)
            .u32(self.link_bandwidth)
            .u32(self.ejection_bandwidth);
        match &self.pattern {
            SyntheticPattern::Transpose => {
                e.u8(0);
            }
            SyntheticPattern::BitComplement => {
                e.u8(1);
            }
            SyntheticPattern::Shuffle => {
                e.u8(2);
            }
            SyntheticPattern::UniformRandom => {
                e.u8(3);
            }
            SyntheticPattern::Hotspot(targets) => {
                e.u8(4).u32(targets.len() as u32);
                for t in targets {
                    e.u32(t.raw());
                }
            }
            SyntheticPattern::Tornado => {
                e.u8(5);
            }
            SyntheticPattern::NearestNeighbor => {
                e.u8(6);
            }
        }
        match self.process {
            InjectionProcess::Bernoulli { rate } => {
                e.u8(0).f64(rate);
            }
            InjectionProcess::Periodic { period, offset } => {
                e.u8(1).u64(period).u64(offset);
            }
            InjectionProcess::Burst { burst_len, gap } => {
                e.u8(2).u32(burst_len).u64(gap);
            }
        }
        e.u32(self.packet_len);
        e.u8(u8::from(self.max_packets.is_some()))
            .u64(self.max_packets.unwrap_or(0));
        e.u8(u8::from(self.stop_after.is_some()))
            .u64(self.stop_after.unwrap_or(0));
        e.u64(self.seed);
        match self.sync {
            DistSync::CycleAccurate => {
                e.u8(0).u64(0);
            }
            DistSync::Slack(k) => {
                e.u8(1).u64(k);
            }
            DistSync::Periodic(n) => {
                e.u8(2).u64(n);
            }
        }
        match self.run {
            RunKind::Cycles(n) => {
                e.u8(0).u64(n);
            }
            RunKind::ToCompletion { max } => {
                e.u8(1).u64(max);
            }
        }
        e.u8(u8::from(self.fast_forward));
        match &self.workload {
            DistWorkload::Synthetic => {
                e.u8(0);
            }
            DistWorkload::MemVectorSum { base_stride, count } => {
                e.u8(1).u64(*base_stride).u64(*count);
            }
            DistWorkload::CpuTokenRing => {
                e.u8(2);
            }
        }
        e.u8(u8::from(self.checkpoint_every.is_some()))
            .u64(self.checkpoint_every.unwrap_or(0));
        e.u8(u8::from(self.telemetry_every.is_some()))
            .u64(self.telemetry_every.unwrap_or(0));
        e.u8(u8::from(self.trace_capacity.is_some()))
            .u32(self.trace_capacity.unwrap_or(0));
        e.u8(match self.kernel {
            KernelMode::Auto => 0,
            KernelMode::Off => 1,
            KernelMode::Force => 2,
        });
    }

    /// Decodes a spec written by [`encode`](Self::encode).
    pub fn decode(d: &mut Dec) -> io::Result<Self> {
        let width = d.u32()?;
        let height = d.u32()?;
        let routing = match d.u8()? {
            0 => RoutingKind::Xy,
            1 => RoutingKind::Yx,
            2 => RoutingKind::O1Turn,
            3 => RoutingKind::Valiant,
            4 => RoutingKind::Romm,
            5 => RoutingKind::Prom,
            6 => RoutingKind::StaticLoadBalanced,
            7 => RoutingKind::AdaptiveMinimal,
            _ => return Err(bad("routing kind")),
        };
        let vca = match d.u8()? {
            0 => VcAllocKind::Dynamic,
            1 => VcAllocKind::StaticSet,
            2 => VcAllocKind::Phased,
            3 => VcAllocKind::Edvca,
            4 => VcAllocKind::Faa,
            5 => VcAllocKind::Table,
            _ => return Err(bad("vca kind")),
        };
        let vcs_per_port = d.u32()?;
        let vc_capacity = d.u32()?;
        let injection_vcs = d.u32()?;
        let injection_vc_capacity = d.u32()?;
        let link_bandwidth = d.u32()?;
        let ejection_bandwidth = d.u32()?;
        let pattern = match d.u8()? {
            0 => SyntheticPattern::Transpose,
            1 => SyntheticPattern::BitComplement,
            2 => SyntheticPattern::Shuffle,
            3 => SyntheticPattern::UniformRandom,
            4 => {
                let n = d.u32()?;
                let targets = (0..n)
                    .map(|_| d.u32().map(NodeId::new))
                    .collect::<io::Result<Vec<_>>>()?;
                SyntheticPattern::Hotspot(targets)
            }
            5 => SyntheticPattern::Tornado,
            6 => SyntheticPattern::NearestNeighbor,
            _ => return Err(bad("pattern")),
        };
        let process = match d.u8()? {
            0 => InjectionProcess::Bernoulli { rate: d.f64()? },
            1 => InjectionProcess::Periodic {
                period: d.u64()?,
                offset: d.u64()?,
            },
            2 => InjectionProcess::Burst {
                burst_len: d.u32()?,
                gap: d.u64()?,
            },
            _ => return Err(bad("process")),
        };
        let packet_len = d.u32()?;
        let max_packets = {
            let some = d.u8()? != 0;
            let v = d.u64()?;
            some.then_some(v)
        };
        let stop_after = {
            let some = d.u8()? != 0;
            let v = d.u64()?;
            some.then_some(v)
        };
        let seed = d.u64()?;
        let sync = {
            let tag = d.u8()?;
            let v = d.u64()?;
            match tag {
                0 => DistSync::CycleAccurate,
                1 => DistSync::Slack(v),
                2 => DistSync::Periodic(v),
                _ => return Err(bad("sync mode")),
            }
        };
        let run = {
            let tag = d.u8()?;
            let v = d.u64()?;
            match tag {
                0 => RunKind::Cycles(v),
                1 => RunKind::ToCompletion { max: v },
                _ => return Err(bad("run kind")),
            }
        };
        let fast_forward = d.u8()? != 0;
        let workload = match d.u8()? {
            0 => DistWorkload::Synthetic,
            1 => DistWorkload::MemVectorSum {
                base_stride: d.u64()?,
                count: d.u64()?,
            },
            2 => DistWorkload::CpuTokenRing,
            _ => return Err(bad("workload")),
        };
        let checkpoint_every = {
            let some = d.u8()? != 0;
            let v = d.u64()?;
            some.then_some(v)
        };
        let telemetry_every = {
            let some = d.u8()? != 0;
            let v = d.u64()?;
            some.then_some(v)
        };
        let trace_capacity = {
            let some = d.u8()? != 0;
            let v = d.u32()?;
            some.then_some(v)
        };
        let kernel = match d.u8()? {
            0 => KernelMode::Auto,
            1 => KernelMode::Off,
            2 => KernelMode::Force,
            _ => return Err(bad("kernel mode")),
        };
        Ok(Self {
            width,
            height,
            routing,
            vca,
            vcs_per_port,
            vc_capacity,
            injection_vcs,
            injection_vc_capacity,
            link_bandwidth,
            ejection_bandwidth,
            workload,
            pattern,
            process,
            packet_len,
            max_packets,
            stop_after,
            seed,
            sync,
            run,
            fast_forward,
            checkpoint_every,
            telemetry_every,
            trace_capacity,
            kernel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_on_the_wire() {
        let spec = DistSpec {
            width: 16,
            height: 4,
            routing: RoutingKind::O1Turn,
            vca: VcAllocKind::Edvca,
            workload: DistWorkload::MemVectorSum {
                base_stride: 0x1_0000,
                count: 12,
            },
            pattern: SyntheticPattern::Hotspot(vec![NodeId::new(3), NodeId::new(9)]),
            process: InjectionProcess::Periodic {
                period: 10,
                offset: 3,
            },
            max_packets: Some(50),
            stop_after: None,
            sync: DistSync::Slack(5),
            run: RunKind::ToCompletion { max: 100_000 },
            fast_forward: true,
            checkpoint_every: Some(256),
            telemetry_every: Some(1_000),
            trace_capacity: Some(4_096),
            kernel: KernelMode::Force,
            ..DistSpec::default()
        };
        let mut e = Enc::new();
        spec.encode(&mut e);
        let back = DistSpec::decode(&mut Dec::new(e.bytes())).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn sequential_reference_is_deterministic() {
        let spec = DistSpec {
            width: 4,
            height: 4,
            run: RunKind::Cycles(500),
            ..DistSpec::default()
        };
        let (a, _, _) = spec.run_sequential().unwrap();
        let (b, _, _) = spec.run_sequential().unwrap();
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.latency_histogram, b.latency_histogram);
    }
}
