//! The distributed host (coordinator): spawns worker processes, runs the
//! topology-aware partitioner, ships each worker its shard of the workload,
//! wires the data plane, and drives credit-counting termination detection
//! over probe rounds.
//!
//! The coordinator never touches simulation state: it only orchestrates.
//! Quiescence is decided exactly like the in-process detector — two probe
//! waves over the workers' ledgers; wave two must observe unchanged ledger
//! versions, which makes wave one a consistent global snapshot (the rounds
//! are serialized through the coordinator, so every wave-one value was
//! simultaneously current between the waves).

use crate::protocol::{CtrlMsg, TransportKind};
use crate::shm::{ShmSegment, ShmTransport};
use crate::spec::{DistSpec, RunKind};
use crate::transport::{InProcTransport, Stream};
use crate::wire::{read_frame, write_frame};
use crate::wiring::{build_shards, cut_channels, cut_pairs, partition_for};
use crate::worker::{ShardWorker, WorkerControl};
use hornet_net::stats::NetworkStats;
use hornet_obs::log::{set_max_level, Level};
use hornet_obs::metrics::TelemetrySample;
use hornet_obs::profile::StallProfile;
use hornet_obs::serve::{ObsHub, ObsServer};
use hornet_obs::trace::{TraceDump, TraceEvent, TraceKind, TraceRing};
use hornet_obs::{olog_debug, olog_info, olog_warn};
use hornet_shard::driver::TelemetrySink;
use hornet_shard::termination::{credits_balance, LedgerState, Quiescence, QuiescenceScan};
use hornet_shard::Partition;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, BufReader, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options of a distributed run.
#[derive(Clone, Debug)]
pub struct HostOptions {
    /// Worker process count (clamped to the partition's shard count).
    pub workers: usize,
    /// Data-plane transport.
    pub transport: TransportKind,
    /// Worker executable (defaults to the current executable, which must
    /// understand the `worker` subcommand — the `hornet-dist` binary does).
    pub worker_cmd: Option<PathBuf>,
    /// Print orchestration progress to stderr.
    pub verbose: bool,
    /// Host-list mode: instead of spawning local workers, expect these
    /// pre-started workers (`host:port` data-plane addresses, one per
    /// shard) to connect to the TCP control plane. Each worker is started
    /// on its machine as `hornet-dist worker --connect <coordinator>
    /// --family tcp --advertise <its host:port>` and is matched to its
    /// shard by that advertised address. Forces the TCP transport.
    pub worker_hosts: Option<Vec<String>>,
    /// Control-plane bind address for host-list mode
    /// (e.g. `0.0.0.0:9100`).
    pub ctrl_listen: Option<String>,
    /// Abort (or, with checkpoints, restart) when no worker event arrives
    /// for this long.
    pub recv_timeout: Duration,
    /// Liveness heartbeat interval assigned to the workers (zero disables
    /// heartbeats).
    pub heartbeat_interval: Duration,
    /// Declare a worker lost when nothing is heard from it for this long
    /// (only enforced when heartbeats are enabled).
    pub heartbeat_timeout: Duration,
    /// How many times a run that lost a worker is restarted — from the last
    /// committed checkpoint set when one exists, from scratch otherwise —
    /// before aborting. Host-list (remote worker) losses are always fatal:
    /// the coordinator cannot respawn a remote process.
    pub max_restarts: u32,
    /// Run handshake nonce; workers whose Hello carries a different nonce
    /// are rejected. Freshly randomized per run when `None`.
    pub nonce: Option<u64>,
    /// Append every telemetry sample the workers ship (requires the spec's
    /// `telemetry_every`) to this file as one NDJSON line each, flushed per
    /// sample so the stream can be tailed live.
    pub metrics_out: Option<PathBuf>,
    /// Serve live run state over HTTP on this address for the duration of
    /// the run: `/healthz`, `/status`, `/metrics` (Prometheus text
    /// exposition), `/trace?since_cycle=N` and `/alerts`. The server is
    /// strictly read-only; enabling it does not perturb results.
    pub http: Option<String>,
}

impl Default for HostOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            transport: TransportKind::UnixSocket,
            worker_cmd: None,
            verbose: false,
            worker_hosts: None,
            ctrl_listen: None,
            recv_timeout: Duration::from_secs(300),
            heartbeat_interval: Duration::from_secs(1),
            heartbeat_timeout: Duration::from_secs(10),
            max_restarts: 2,
            nonce: None,
            metrics_out: None,
            http: None,
        }
    }
}

/// The merged result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistOutcome {
    /// Statistics merged over all shards.
    pub stats: NetworkStats,
    /// Per-shard statistics, in shard order.
    pub per_shard: Vec<NetworkStats>,
    /// The cycle the run stopped at (max over shards).
    pub final_cycle: u64,
    /// For completion runs: every agent finished and the network drained.
    pub completed: bool,
    /// Physical links cut by the partition.
    pub cut_links: usize,
    /// Number of shards (worker processes) used.
    pub shards: usize,
    /// How many times the run was restarted after losing a worker.
    pub restarts: u32,
    /// Per-shard wall-time attribution (compute / wait / ingest / flush),
    /// in shard order.
    pub per_shard_profiles: Vec<StallProfile>,
    /// Merged event trace: every shard's tile/runtime rings (when the spec
    /// enabled tracing) plus the coordinator's own supervision events
    /// (checkpoint commits, worker losses, rollbacks, respawns).
    pub trace: TraceDump,
    /// Every telemetry sample the workers shipped, in arrival order.
    pub samples: Vec<TelemetrySample>,
}

fn proto_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("protocol: {msg}"))
}

/// A recoverable worker loss: the supervisor kills the attempt and — within
/// `max_restarts` — relaunches from the last committed checkpoint set. The
/// dedicated kind is what `run_distributed` dispatches recovery on.
fn lost(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionAborted,
        format!("worker lost: {msg}"),
    )
}

/// A fresh per-run handshake nonce (randomly seeded hasher state, not a
/// cryptographic token — it fences off stale or misdirected workers, not
/// adversaries).
fn fresh_nonce() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(u64::from(std::process::id()));
    h.finish()
}

/// The coordinator-side checkpoint commit log: per-shard staged captures,
/// and the newest cycle every shard has reported — the only state a restart
/// may resume from (a cycle some shard never captured would desynchronize
/// the rendezvous).
struct CommitLog {
    staged: Vec<std::collections::BTreeMap<u64, Vec<u8>>>,
    committed: Option<(u64, Vec<Vec<u8>>)>,
}

impl CommitLog {
    fn new(shards: usize) -> Self {
        Self {
            staged: (0..shards).map(|_| Default::default()).collect(),
            committed: None,
        }
    }

    /// Stages one shard's capture; returns `Some((cycle, total_bytes))` when
    /// this report completed a new committed set.
    fn record(&mut self, shard: usize, cycle: u64, data: Vec<u8>) -> Option<(u64, usize)> {
        if shard >= self.staged.len() {
            return None;
        }
        self.staged[shard].insert(cycle, data);
        // Commit the newest cycle staged by every shard (checkpoint cadence
        // is uniform, so the per-shard newest cycles only differ while some
        // shard's report is still in flight).
        let candidate = self
            .staged
            .iter()
            .map(|m| m.keys().next_back().copied())
            .min()
            .flatten();
        if let Some(cycle) = candidate {
            if self.staged.iter().all(|m| m.contains_key(&cycle))
                && self.committed.as_ref().is_none_or(|(c, _)| *c < cycle)
            {
                let set: Vec<Vec<u8>> = self
                    .staged
                    .iter_mut()
                    .map(|m| m.get(&cycle).cloned().expect("checked membership"))
                    .collect();
                let bytes = set.iter().map(Vec::len).sum();
                self.committed = Some((cycle, set));
                for m in &mut self.staged {
                    *m = m.split_off(&(cycle + 1));
                }
                return Some((cycle, bytes));
            }
        }
        None
    }

    fn take_committed(&mut self) -> Option<(u64, Vec<Vec<u8>>)> {
        self.committed.take()
    }
}

/// Coordinator-side telemetry aggregation: every sample is kept for the
/// final outcome and, when `--metrics-out` is set, appended to the stream
/// file as one NDJSON line — flushed per sample, so `tail -f` sees the run
/// live.
struct MetricsStream {
    out: Option<std::io::BufWriter<std::fs::File>>,
    samples: Vec<TelemetrySample>,
    /// Live-introspection hub: every sample is also ingested here when the
    /// run serves HTTP, and supervision events are mirrored into its trace
    /// buffer.
    hub: Option<Arc<ObsHub>>,
}

impl MetricsStream {
    fn open(path: Option<&std::path::Path>) -> io::Result<Self> {
        let out = match path {
            Some(p) => Some(std::io::BufWriter::new(std::fs::File::create(p)?)),
            None => None,
        };
        Ok(Self {
            out,
            samples: Vec::new(),
            hub: None,
        })
    }

    fn absorb(&mut self, sample: TelemetrySample) {
        olog_debug!(
            "host",
            { shard = sample.shard, cycle = sample.cycle },
            "telemetry sample"
        );
        if let Some(w) = &mut self.out {
            let _ = writeln!(w, "{}", sample.to_ndjson());
            let _ = w.flush();
        }
        if let Some(hub) = &self.hub {
            hub.ingest(&sample);
        }
        self.samples.push(sample);
    }

    /// Mirrors a coordinator supervision event into the live trace buffer
    /// (no-op without a hub).
    fn mirror_trace(&self, event: TraceEvent) {
        if let Some(hub) = &self.hub {
            hub.record_trace(event);
        }
    }

    /// The per-shard `packet_latency` log₂ histograms from each shard's
    /// newest sample, merged (they are cumulative over the run, so the
    /// newest per shard is the shard's total).
    fn merged_latency(&self) -> Option<Vec<u64>> {
        let mut latest: HashMap<u32, &TelemetrySample> = HashMap::new();
        for s in &self.samples {
            latest.insert(s.shard, s); // arrival order: later wins
        }
        let mut merged: Option<Vec<u64>> = None;
        for s in latest.values() {
            if let Some(h) = hornet_obs::history::metrics_histogram(&s.metrics, "packet_latency") {
                let m = merged.get_or_insert_with(|| vec![0u64; h.len()]);
                for (acc, c) in m.iter_mut().zip(h.iter()) {
                    *acc += c;
                }
            }
        }
        merged
    }

    /// Appends a summary record to the NDJSON stream and flushes it, so
    /// everything absorbed so far survives a rollback or abort; `event` is
    /// `"rollback"`, `"abort"` or `"end"`. Carries the merged
    /// packet-latency quantile estimates when any shard shipped them.
    fn summarize(&mut self, event: &str, restarts: u32) {
        let quantiles = self.merged_latency().map(|h| {
            (
                hornet_obs::history::histogram_quantile(&h, 0.50),
                hornet_obs::history::histogram_quantile(&h, 0.95),
                hornet_obs::history::histogram_quantile(&h, 0.99),
            )
        });
        if let Some(w) = &mut self.out {
            let mut line = format!(
                "{{\"summary\":true,\"event\":\"{event}\",\"restarts\":{restarts},\
                 \"samples\":{}",
                self.samples.len()
            );
            if let Some((p50, p95, p99)) = quantiles {
                let _ = write!(
                    line,
                    ",\"latency_p50\":{p50:.4},\"latency_p95\":{p95:.4},\"latency_p99\":{p99:.4}"
                );
            }
            line.push('}');
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }
}

/// One worker connection from the coordinator's side. (The control
/// connection is identified by shard id — accept order — which need not
/// match the spawn order of the child processes, so the `Child` handles are
/// kept separately and only reaped after every socket is shut down.)
struct WorkerConn {
    writer: Stream,
}

impl WorkerConn {
    fn send(&mut self, msg: &CtrlMsg) -> io::Result<()> {
        write_frame(&mut self.writer, &msg.encode())?;
        self.writer.flush()
    }
}

/// What the per-connection reader threads forward to the main loop.
/// (A handful of transient control messages per run: the size skew of the
/// spec-carrying variants is irrelevant here.)
#[allow(clippy::large_enum_variant)]
enum Event {
    Msg(usize, CtrlMsg),
    Gone(usize),
}

/// Scratch directory for this run's sockets/segments.
fn scratch_dir() -> io::Result<PathBuf> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "hornet-dist-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Runs `spec` across worker processes, supervising them: a worker lost
/// mid-run (crash, kill, hang past the heartbeat timeout) triggers a global
/// rollback — every worker is killed and respawned, and the run resumes from
/// the last checkpoint cycle every shard committed (from scratch when none
/// has), up to `max_restarts` times. Returns the merged outcome; every
/// spawned process, socket and segment is cleaned up on all paths, including
/// the final abort.
pub fn run_distributed(spec: &DistSpec, opts: &HostOptions) -> io::Result<DistOutcome> {
    if opts.verbose {
        set_max_level(Level::Info);
    }
    let workers = opts
        .worker_hosts
        .as_ref()
        .map_or(opts.workers, |hosts| hosts.len());
    let partition = partition_for(spec, workers);
    let shards = partition.shard_count();
    if shards < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a distributed run needs at least two shards",
        ));
    }
    let nonce = opts.nonce.unwrap_or_else(fresh_nonce);
    let dir = scratch_dir()?;
    // Supervision events (checkpoint commits, losses, rollbacks, respawns)
    // span attempts, so the ring lives here and is folded into the final
    // outcome's trace. The metrics stream likewise persists across restarts.
    let mut host_ring = TraceRing::new(1024);
    let mut metrics = MetricsStream::open(opts.metrics_out.as_deref())?;
    // Live-monitoring server: spawned before the first attempt so scrapes
    // observe the whole run, including rollbacks. Strictly read-only.
    let mut http_server = match &opts.http {
        None => None,
        Some(addr) => {
            let hub = Arc::new(ObsHub::new());
            hub.set_gauge("shards", shards as u64);
            hub.set_gauge("restarts", 0);
            let server = ObsServer::spawn(addr, Arc::clone(&hub))?;
            olog_info!(
                "host",
                { addr = server.addr() },
                "live monitoring at http://{}/status",
                server.addr()
            );
            metrics.hub = Some(hub);
            Some(server)
        }
    };
    let result = (|| {
        let mut resume: Option<(u64, Vec<Vec<u8>>)> = None;
        let mut restarts = 0u32;
        loop {
            // Fresh socket/segment paths per attempt: a killed attempt's
            // stale files can never collide with the respawn.
            let attempt_dir = dir.join(format!("a{restarts}"));
            std::fs::create_dir_all(&attempt_dir)?;
            let mut commit = CommitLog::new(shards);
            let attempt = run_distributed_inner(
                spec,
                opts,
                &partition,
                &attempt_dir,
                nonce,
                resume.as_ref(),
                &mut commit,
                &mut host_ring,
                &mut metrics,
            );
            match attempt {
                Ok(mut outcome) => {
                    outcome.restarts = restarts;
                    let mut supervision = TraceDump::default();
                    host_ring.drain_into(&mut supervision);
                    outcome.trace.merge(supervision);
                    metrics.summarize("end", restarts);
                    outcome.samples = std::mem::take(&mut metrics.samples);
                    return Ok(outcome);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionAborted
                        && opts.worker_hosts.is_none()
                        && restarts < opts.max_restarts =>
                {
                    // Global rollback: the attempt's children are already
                    // killed; fold in the newest checkpoint set every shard
                    // committed and relaunch.
                    restarts += 1;
                    if let Some(c) = commit.take_committed() {
                        resume = Some(c);
                    }
                    let rollback_to = resume.as_ref().map_or(0, |(cycle, _)| *cycle);
                    for event in [
                        TraceEvent {
                            cycle: rollback_to,
                            node: u32::MAX,
                            kind: TraceKind::WorkerLost,
                            a: u64::from(restarts),
                            b: 0,
                        },
                        TraceEvent {
                            cycle: rollback_to,
                            node: u32::MAX,
                            kind: TraceKind::Rollback,
                            a: u64::from(resume.is_some()),
                            b: 0,
                        },
                        TraceEvent {
                            cycle: rollback_to,
                            node: u32::MAX,
                            kind: TraceKind::Respawn,
                            a: u64::from(restarts),
                            b: 0,
                        },
                    ] {
                        host_ring.record(event);
                        metrics.mirror_trace(event);
                    }
                    if let Some(hub) = &metrics.hub {
                        hub.set_gauge("restarts", u64::from(restarts));
                    }
                    // Flush the stream with a rollback marker: every sample
                    // absorbed before the loss is durable even if the
                    // respawned attempt dies too.
                    metrics.summarize("rollback", restarts);
                    olog_warn!(
                        "host",
                        { restart = restarts, max = opts.max_restarts },
                        "{e}; restarting from {}",
                        match &resume {
                            Some((cycle, _)) => format!("checkpoint cycle {cycle}"),
                            None => "scratch (nothing committed yet)".into(),
                        }
                    );
                }
                Err(e) => {
                    // Fatal abort: flush the stream so samples absorbed
                    // before the failure are never lost.
                    metrics.summarize("abort", restarts);
                    return Err(e);
                }
            }
        }
    })();
    if let Some(mut server) = http_server.take() {
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
    result
}

#[allow(clippy::too_many_arguments)] // internal per-attempt entry
fn run_distributed_inner(
    spec: &DistSpec,
    opts: &HostOptions,
    partition: &Partition,
    dir: &std::path::Path,
    nonce: u64,
    resume: Option<&(u64, Vec<Vec<u8>>)>,
    commit: &mut CommitLog,
    host_ring: &mut TraceRing,
    metrics: &mut MetricsStream,
) -> io::Result<DistOutcome> {
    let shards = partition.shard_count();
    let geometry = spec.network_config().geometry;
    let cut_links = cut_pairs(&geometry, partition).len();
    let remote_hosts = opts.worker_hosts.as_deref();
    let transport = if remote_hosts.is_some() {
        // Pre-started workers on other machines can only be reached over
        // TCP.
        TransportKind::Tcp
    } else {
        opts.transport
    };
    if let Some(hosts) = remote_hosts {
        if hosts.len() != shards {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "host list has {} entries but the partition needs {shards} shards",
                    hosts.len()
                ),
            ));
        }
    }

    // Control plane listener. Host-list mode always listens on TCP (at the
    // user-given bind address) so remote workers can reach it.
    #[allow(dead_code)] // the Tcp arm is the non-unix fallback
    enum CtrlListener {
        #[cfg(unix)]
        Unix(UnixListener),
        Tcp(TcpListener),
    }
    let (listener, ctrl_addr, ctrl_family) = if remote_hosts.is_some() {
        let bind = opts.ctrl_listen.as_deref().unwrap_or("0.0.0.0:0");
        let l = TcpListener::bind(bind)?;
        let addr = l.local_addr()?.to_string();
        // Warn level: the run blocks here until the operator starts the
        // remote workers, so the instructions must be visible by default.
        olog_warn!(
            "host",
            { workers = shards, addr = addr },
            "waiting for workers (start each as: hornet-dist worker --connect <this host>:{} \
             --family tcp --advertise <its host:port> --nonce {nonce})",
            addr.rsplit(':').next().unwrap_or("?")
        );
        (CtrlListener::Tcp(l), addr, "tcp")
    } else {
        #[cfg(unix)]
        {
            let path = dir.join("control.sock");
            let l = UnixListener::bind(&path)?;
            (
                CtrlListener::Unix(l),
                path.to_string_lossy().into_owned(),
                "unix",
            )
        }
        #[cfg(not(unix))]
        {
            let l = TcpListener::bind("127.0.0.1:0")?;
            let addr = l.local_addr()?.to_string();
            (CtrlListener::Tcp(l), addr, "tcp")
        }
    };

    // Spawn the workers (host-list mode: they were started by hand on their
    // machines and connect on their own).
    let mut children: Vec<Child> = Vec::with_capacity(shards);
    if remote_hosts.is_none() {
        let worker_cmd = match &opts.worker_cmd {
            Some(p) => p.clone(),
            None => std::env::current_exe()?,
        };
        for _ in 0..shards {
            let child = Command::new(&worker_cmd)
                .arg("worker")
                .arg("--connect")
                .arg(&ctrl_addr)
                .arg("--family")
                .arg(ctrl_family)
                .arg("--nonce")
                .arg(nonce.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()?;
            children.push(child);
        }
    }
    // From here on, kill the children on any error path.
    let run = (|| -> io::Result<DistOutcome> {
        // Accept one control connection per worker. Locally spawned workers
        // take accept order as shard id; host-list workers are matched to
        // the shard whose advertised address they announce.
        let deadline =
            Instant::now() + Duration::from_secs(if remote_hosts.is_some() { 600 } else { 60 });
        let mut conn_slots: Vec<Option<(WorkerConn, BufReader<Stream>)>> =
            (0..shards).map(|_| None).collect();
        let mut accepted = 0usize;
        while accepted < shards {
            let stream = loop {
                let res = match &listener {
                    #[cfg(unix)]
                    CtrlListener::Unix(l) => {
                        l.set_nonblocking(true)?;
                        l.accept().map(|(s, _)| Stream::Unix(s))
                    }
                    CtrlListener::Tcp(l) => {
                        l.set_nonblocking(true)?;
                        l.accept().map(|(s, _)| Stream::Tcp(s))
                    }
                };
                match res {
                    Ok(s) => break s,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if Instant::now() > deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "workers did not connect",
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            };
            set_stream_blocking(&stream)?;
            let mut reader = BufReader::new(stream.try_clone()?);
            let CtrlMsg::Hello {
                version,
                advertise,
                nonce: hello_nonce,
            } = CtrlMsg::decode(&read_frame(&mut reader)?)?
            else {
                return Err(proto_err("expected Hello"));
            };
            if version != crate::wire::WIRE_VERSION {
                return Err(proto_err("wire version mismatch"));
            }
            if hello_nonce != nonce {
                // A stray worker — stale respawn from a killed attempt, or
                // someone else's run — must not claim a shard slot. Drop the
                // connection and keep accepting.
                olog_warn!(
                    "host",
                    {},
                    "rejected worker with stale nonce ({advertise:?})"
                );
                stream.shutdown();
                continue;
            }
            let shard = match remote_hosts {
                None => accepted,
                Some(hosts) => {
                    let idx = hosts.iter().position(|h| *h == advertise).ok_or_else(|| {
                        proto_err(&format!(
                            "worker advertised {advertise:?}, not in the host list"
                        ))
                    })?;
                    if conn_slots[idx].is_some() {
                        return Err(proto_err(&format!("duplicate worker for {advertise}")));
                    }
                    idx
                }
            };
            olog_info!("host", { shard = shard }, "worker connected ({advertise})");
            conn_slots[shard] = Some((WorkerConn { writer: stream }, reader));
            accepted += 1;
        }
        let mut conns: Vec<WorkerConn> = Vec::with_capacity(shards);
        let mut readers = Vec::with_capacity(shards);
        for slot in conn_slots {
            let (conn, reader) = slot.expect("every shard connected");
            conns.push(conn);
            readers.push(reader);
        }

        // Assign shards.
        for (shard, conn) in conns.iter_mut().enumerate() {
            let listen = match (remote_hosts, transport) {
                // Host-list mode: the worker binds its advertised port and
                // the peers dial the advertised address.
                (Some(hosts), _) => hosts[shard].clone(),
                (None, TransportKind::UnixSocket) => dir
                    .join(format!("data-{shard}.sock"))
                    .to_string_lossy()
                    .into_owned(),
                _ => String::new(),
            };
            conn.send(&CtrlMsg::Assign {
                shard: shard as u32,
                shards: shards as u32,
                spec: Box::new(spec.clone()),
                transport,
                listen,
                heartbeat_ms: opts.heartbeat_interval.as_millis() as u64,
                resume: resume.map(|(_, sets)| sets[shard].clone()),
            })?;
        }

        // Collect data-plane addresses, then broadcast the map.
        let mut addrs: Vec<String> = Vec::with_capacity(shards);
        for reader in readers.iter_mut() {
            let CtrlMsg::Listening { addr } = CtrlMsg::decode(&read_frame(reader)?)? else {
                return Err(proto_err("expected Listening"));
            };
            addrs.push(addr);
        }
        // Shared-memory segments must exist before the map is broadcast.
        let mut segments: Vec<Arc<ShmSegment>> = Vec::new();
        match transport {
            TransportKind::Shm => {
                let channels = cut_channels(
                    &geometry,
                    partition,
                    spec.vcs_per_port as usize,
                    spec.vc_capacity as usize,
                );
                let mut pair_paths: Vec<(u32, u32, String)> = Vec::new();
                let mut pairs: Vec<(usize, usize)> = channels
                    .iter()
                    .map(|c| (c.src_shard.min(c.dst_shard), c.src_shard.max(c.dst_shard)))
                    .collect();
                pairs.sort_unstable();
                pairs.dedup();
                for (lo, hi) in pairs {
                    let lo_caps: Vec<usize> = channels
                        .iter()
                        .filter(|c| c.src_shard == lo && c.dst_shard == hi)
                        .map(|c| c.capacity)
                        .collect();
                    let hi_caps: Vec<usize> = channels
                        .iter()
                        .filter(|c| c.src_shard == hi && c.dst_shard == lo)
                        .map(|c| c.capacity)
                        .collect();
                    let layout = ShmTransport::layout(lo_caps, hi_caps, spec.sync_depth());
                    let path = dir.join(format!("seg-{lo}-{hi}.shm"));
                    segments.push(ShmSegment::create(&path, &layout)?);
                    pair_paths.push((lo as u32, hi as u32, path.to_string_lossy().into_owned()));
                }
                for conn in conns.iter_mut() {
                    conn.send(&CtrlMsg::ShmMap {
                        entries: pair_paths.clone(),
                    })?;
                }
            }
            _ => {
                let entries: Vec<(u32, String)> = addrs
                    .iter()
                    .enumerate()
                    .map(|(s, a)| (s as u32, a.clone()))
                    .collect();
                for conn in conns.iter_mut() {
                    conn.send(&CtrlMsg::PeerMap {
                        entries: entries.clone(),
                    })?;
                }
            }
        }

        for conn in conns.iter_mut() {
            conn.send(&CtrlMsg::Start)?;
        }
        olog_info!(
            "host",
            { workers = shards },
            "started workers ({transport:?})"
        );

        // Post-start: reader threads feed one event queue.
        let (tx, rx): (Sender<Event>, Receiver<Event>) = channel();
        let mut reader_threads = Vec::new();
        for (shard, mut reader) in readers.into_iter().enumerate() {
            let tx = tx.clone();
            reader_threads.push(std::thread::spawn(move || loop {
                match read_frame(&mut reader) {
                    Ok(frame) => match CtrlMsg::decode(&frame) {
                        Ok(msg) => {
                            if tx.send(Event::Msg(shard, msg)).is_err() {
                                return;
                            }
                        }
                        Err(_) => {
                            let _ = tx.send(Event::Gone(shard));
                            return;
                        }
                    },
                    Err(_) => {
                        let _ = tx.send(Event::Gone(shard));
                        return;
                    }
                }
            }));
        }
        drop(tx);

        let outcome = supervise(
            spec, opts, &mut conns, &rx, shards, cut_links, commit, host_ring, metrics,
        )?;
        olog_debug!("host", {}, "supervise complete");

        // Shut every control socket down first (drop alone is not enough:
        // the reader threads hold clones, so the workers would never see
        // EOF), and only then reap the children — a control connection's
        // shard id is its accept order, which need not match spawn order.
        for conn in conns.iter_mut() {
            conn.writer.shutdown();
        }
        for child in children.iter_mut() {
            let _ = child.wait();
        }
        children.clear();
        drop(conns);
        for t in reader_threads {
            let _ = t.join();
        }
        olog_debug!("host", {}, "workers reaped, readers joined");
        Ok(outcome)
    })();

    // Cleanup on error: kill any child still tracked (naming the ones that
    // had already died — the usual root cause of the abort).
    if run.is_err() {
        for (i, child) in children.iter_mut().enumerate() {
            if let Ok(Some(status)) = child.try_wait() {
                olog_info!(
                    "host",
                    { process = i },
                    "worker process exited with {status}"
                );
            }
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    run
}

/// The post-start supervision loop: collects Done reports, commits shard
/// checkpoints, tracks per-worker liveness, and, when the run needs it,
/// drives probe-round termination detection. A worker going silent past the
/// heartbeat timeout, or its control channel closing before it reported, is
/// a recoverable loss ([`lost`]).
#[allow(clippy::too_many_arguments)] // internal supervision entry
fn supervise(
    spec: &DistSpec,
    opts: &HostOptions,
    conns: &mut [WorkerConn],
    rx: &Receiver<Event>,
    shards: usize,
    cut_links: usize,
    commit: &mut CommitLog,
    host_ring: &mut TraceRing,
    metrics: &mut MetricsStream,
) -> io::Result<DistOutcome> {
    /// One shard's final report.
    struct DoneReport {
        final_now: u64,
        completed: bool,
        stats: NetworkStats,
        profile: StallProfile,
        trace: Vec<u8>,
    }

    let detector = spec.needs_detector();
    let mut done: Vec<Option<DoneReport>> = (0..shards).map(|_| None).collect();
    let mut n_done = 0usize;
    let mut round = 0u64;
    let mut stopped = false;
    let mut last_skip = 0u64;
    let mut last_seen: Vec<Instant> = (0..shards).map(|_| Instant::now()).collect();
    let mut last_event = Instant::now();

    // Handles every non-ledger message in one place, so checkpoints, Done
    // reports and telemetry are never dropped regardless of which wait they
    // arrive in.
    fn absorb(
        shard: usize,
        msg: CtrlMsg,
        done: &mut [Option<DoneReport>],
        n_done: &mut usize,
        commit: &mut CommitLog,
        host_ring: &mut TraceRing,
        metrics: &mut MetricsStream,
    ) {
        match msg {
            CtrlMsg::Done {
                final_now,
                completed,
                stats,
                profile,
                trace,
            } => {
                olog_debug!("host", { shard = shard, cycle = final_now }, "Done received");
                if done[shard]
                    .replace(DoneReport {
                        final_now,
                        completed,
                        stats: *stats,
                        profile,
                        trace,
                    })
                    .is_none()
                {
                    *n_done += 1;
                }
            }
            CtrlMsg::Checkpoint { cycle, data } => {
                if let Some((cycle, bytes)) = commit.record(shard, cycle, data) {
                    let event = TraceEvent {
                        cycle,
                        node: u32::MAX,
                        kind: TraceKind::CheckpointCommit,
                        a: bytes as u64,
                        b: 0,
                    };
                    host_ring.record(event);
                    metrics.mirror_trace(event);
                    if let Some(hub) = &metrics.hub {
                        hub.set_gauge("checkpoint_cycle", cycle);
                    }
                    olog_info!(
                        "host",
                        { cycle = cycle, bytes = bytes },
                        "checkpoint set committed"
                    );
                }
            }
            CtrlMsg::Telemetry { sample } => metrics.absorb(*sample),
            _ => {} // heartbeats carry no payload beyond liveness
        }
    }

    // Collects one probe round's replies, absorbing interleaved traffic.
    #[allow(clippy::too_many_arguments)]
    let collect_round = |round: u64,
                         done: &mut Vec<Option<DoneReport>>,
                         n_done: &mut usize,
                         commit: &mut CommitLog,
                         host_ring: &mut TraceRing,
                         metrics: &mut MetricsStream,
                         last_seen: &mut [Instant],
                         last_event: &mut Instant|
     -> io::Result<Option<Vec<(u64, LedgerState)>>> {
        let mut replies: Vec<Option<(u64, LedgerState)>> = (0..shards).map(|_| None).collect();
        let mut got = 0usize;
        let deadline = Instant::now() + Duration::from_secs(5);
        while got < shards {
            let timeout = deadline
                .checked_duration_since(Instant::now())
                .unwrap_or(Duration::ZERO);
            match rx.recv_timeout(timeout) {
                Ok(Event::Msg(shard, msg)) => {
                    last_seen[shard] = Instant::now();
                    *last_event = Instant::now();
                    match msg {
                        CtrlMsg::Ledger {
                            round: r,
                            version,
                            state,
                        } if r == round => {
                            if replies[shard].replace((version, state)).is_none() {
                                got += 1;
                            }
                        }
                        CtrlMsg::Ledger { .. } => {} // stale round
                        other => absorb(shard, other, done, n_done, commit, host_ring, metrics),
                    }
                }
                Ok(Event::Gone(shard)) => {
                    if done[shard].is_none() {
                        return Err(lost(&format!("shard {shard} exited before reporting")));
                    }
                    // A finished worker's channel closing is not an error,
                    // but it can no longer answer probes.
                    return Ok(None);
                }
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(proto_err("all workers gone")),
            }
        }
        let mut out = Vec::with_capacity(shards);
        for (shard, reply) in replies.into_iter().enumerate() {
            out.push(reply.ok_or_else(|| {
                proto_err(&format!("shard {shard} never answered probe round {round}"))
            })?);
        }
        Ok(Some(out))
    };

    while n_done < shards {
        // Liveness: heartbeats (and all other control traffic) refresh
        // `last_seen`; a live-but-unreported worker gone silent past the
        // timeout is lost. The overall no-progress timeout backstops runs
        // with heartbeats disabled.
        if opts.heartbeat_interval > Duration::ZERO {
            for (shard, seen) in last_seen.iter().enumerate() {
                if done[shard].is_none() && seen.elapsed() > opts.heartbeat_timeout {
                    return Err(lost(&format!(
                        "shard {shard} sent no heartbeat for {:.1?}",
                        seen.elapsed()
                    )));
                }
            }
        }
        if last_event.elapsed() > opts.recv_timeout {
            return Err(lost(&format!(
                "workers made no progress for {:.1?} (recv_timeout)",
                opts.recv_timeout
            )));
        }

        if detector && !stopped {
            // Wave one.
            round += 1;
            for conn in conns.iter_mut() {
                let _ = conn.send(&CtrlMsg::Probe { round });
            }
            let wave1 = collect_round(
                round,
                &mut done,
                &mut n_done,
                commit,
                host_ring,
                metrics,
                &mut last_seen,
                &mut last_event,
            )?;
            if let Some(wave1) = wave1 {
                let states: Vec<LedgerState> = wave1.iter().map(|&(_, s)| s).collect();
                if credits_balance(&states) {
                    // Wave two: versions must not have moved.
                    round += 1;
                    for conn in conns.iter_mut() {
                        let _ = conn.send(&CtrlMsg::Probe { round });
                    }
                    let wave2 = collect_round(
                        round,
                        &mut done,
                        &mut n_done,
                        commit,
                        host_ring,
                        metrics,
                        &mut last_seen,
                        &mut last_event,
                    )?;
                    if let Some(wave2) = wave2 {
                        let verdict = QuiescenceScan::run(shards, |i| wave1[i], |i| wave2[i].0);
                        if let Quiescence::Idle {
                            finished,
                            next_event,
                            cycle,
                        } = verdict
                        {
                            let completion = matches!(spec.run, RunKind::ToCompletion { .. });
                            if completion && finished {
                                stopped = true;
                                for conn in conns.iter_mut() {
                                    let _ = conn.send(&CtrlMsg::Stop);
                                }
                            } else if spec.fast_forward {
                                let end = spec.cycle_budget();
                                let target = if next_event == u64::MAX {
                                    end
                                } else {
                                    next_event.saturating_sub(1).min(end)
                                };
                                if target > cycle && target > last_skip {
                                    last_skip = target;
                                    for conn in conns.iter_mut() {
                                        let _ = conn.send(&CtrlMsg::Skip { target });
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Gentle pacing between probe rounds.
            std::thread::sleep(Duration::from_micros(500));
        } else {
            // Bounded waits so liveness is re-checked even when the channel
            // is quiet.
            let slice = Duration::from_millis(250).min(opts.recv_timeout);
            match rx.recv_timeout(slice) {
                Ok(Event::Msg(shard, msg)) => {
                    last_seen[shard] = Instant::now();
                    last_event = Instant::now();
                    absorb(
                        shard,
                        msg,
                        &mut done,
                        &mut n_done,
                        commit,
                        host_ring,
                        metrics,
                    );
                }
                Ok(Event::Gone(shard)) => {
                    olog_debug!("host", { shard = shard }, "control channel closed");
                    if done[shard].is_none() {
                        return Err(lost(&format!("shard {shard} exited before reporting")));
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(proto_err("all workers gone")),
            }
        }
    }

    let mut merged = NetworkStats::new();
    let mut per_shard = Vec::with_capacity(shards);
    let mut per_shard_profiles = Vec::with_capacity(shards);
    let mut trace = TraceDump::default();
    let mut final_cycle = 0u64;
    let mut completed = true;
    for (shard, entry) in done.into_iter().enumerate() {
        let report = entry.expect("all workers reported");
        merged.merge(&report.stats);
        per_shard.push(report.stats);
        per_shard_profiles.push(report.profile);
        if !report.trace.is_empty() {
            trace.merge(TraceDump::decode(&report.trace).map_err(|e| {
                proto_err(&format!("shard {shard} shipped an unreadable trace: {e}"))
            })?);
        }
        final_cycle = final_cycle.max(report.final_now);
        completed &= report.completed;
    }
    Ok(DistOutcome {
        stats: merged,
        per_shard,
        final_cycle,
        completed,
        cut_links,
        shards,
        restarts: 0,
        per_shard_profiles,
        trace,
        samples: Vec::new(), // filled by `run_distributed` from the stream
    })
}

fn set_stream_blocking(s: &Stream) -> io::Result<()> {
    match s {
        #[cfg(unix)]
        Stream::Unix(u) => u.set_nonblocking(false),
        Stream::Tcp(t) => t.set_nonblocking(false),
    }
}

// ---------------------------------------------------------------------------
// In-process reference backend: the same worker loop and transport trait,
// with shards on threads and the SPSC rings shared directly. This is both
// the `BoundaryTransport` implementation the thread backend corresponds to
// and the harness the dist worker loop is unit-tested against.
// ---------------------------------------------------------------------------

/// Runs `spec` on `workers` in-process threads over [`InProcTransport`]s,
/// with the caller thread acting as the termination detector. Functionally
/// equivalent to `run_distributed` minus the process isolation.
pub fn run_threaded(spec: &DistSpec, workers: usize) -> io::Result<DistOutcome> {
    let partition = partition_for(spec, workers);
    let shards = partition.shard_count();
    if shards < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "need at least two shards",
        ));
    }
    let geometry = spec.network_config().geometry;
    let cut_links = cut_pairs(&geometry, &partition).len();
    let (parts, store) = build_shards(spec, &partition)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    // All shards share this process's payload store: the channel is the
    // same-process fast path and transports leave payloads alone.
    let payloads: Arc<dyn hornet_shard::driver::PayloadChannel> =
        Arc::new(hornet_shard::driver::PayloadEndpoint::shared(store));

    let controls: Vec<WorkerControl> = (0..shards).map(|_| WorkerControl::new()).collect();
    let stop_all: Vec<Arc<AtomicBool>> = controls.iter().map(|c| Arc::clone(&c.stop)).collect();
    let skip_all: Vec<Arc<AtomicU64>> = controls.iter().map(|c| Arc::clone(&c.skip_to)).collect();
    let ledgers: Vec<_> = controls.iter().map(|c| Arc::clone(&c.ledger)).collect();

    // One transport pair per adjacency.
    let mut endpoints: HashMap<(usize, usize), InProcTransport> = HashMap::new();
    let mut workers_vec = Vec::with_capacity(shards);
    let mut parts = parts;
    // Pre-create pairs from each shard's neighbor list.
    let adjacency: Vec<Vec<usize>> = parts
        .iter()
        .map(|p| p.neighbors.iter().map(|n| n.peer).collect())
        .collect();
    for (s, peers) in adjacency.iter().enumerate() {
        for &t in peers {
            if s < t {
                let (a, b) = InProcTransport::pair(0);
                endpoints.insert((s, t), a);
                endpoints.insert((t, s), b);
            }
        }
    }
    for part in parts.drain(..) {
        let shard = part.shard;
        let mut worker =
            ShardWorker::from_parts(part, spec, controls[shard].clone(), Arc::clone(&payloads));
        for peer in worker.transports_plan() {
            let t = endpoints
                .remove(&(shard, peer))
                .expect("transport endpoint for adjacency");
            worker.transports.push(Box::new(t));
        }
        workers_vec.push(worker);
    }

    let budget = spec.cycle_budget();
    let handles: Vec<_> = workers_vec
        .into_iter()
        .map(|w| {
            std::thread::spawn(move || {
                let want_samples = w.telemetry_every.is_some();
                let mut samples: Vec<TelemetrySample> = Vec::new();
                let outcome = w.run(
                    0,
                    budget,
                    0,
                    None,
                    want_samples.then_some(&mut samples as &mut dyn TelemetrySink),
                )?;
                Ok::<_, io::Error>((outcome, samples))
            })
        })
        .collect();

    // Caller thread = detector (when the run needs one; otherwise it just
    // joins the workers below).
    let detector = spec.needs_detector();
    let completion = matches!(spec.run, RunKind::ToCompletion { .. });
    let mut last_skip = 0u64;
    while detector && handles.iter().any(|h| !h.is_finished()) {
        {
            let verdict =
                QuiescenceScan::run(shards, |i| ledgers[i].read(), |i| ledgers[i].version());
            if let Quiescence::Idle {
                finished,
                next_event,
                cycle,
            } = verdict
            {
                if completion && finished {
                    for stop in &stop_all {
                        stop.store(true, Ordering::Release);
                    }
                } else if spec.fast_forward {
                    let target = if next_event == u64::MAX {
                        budget
                    } else {
                        next_event.saturating_sub(1).min(budget)
                    };
                    if target > cycle && target > last_skip {
                        last_skip = target;
                        for skip in &skip_all {
                            skip.fetch_max(target, Ordering::AcqRel);
                        }
                    }
                }
            }
        }
        // Pace the scan; detection latency is bounded by the sleep while the
        // workers keep every core.
        std::thread::sleep(Duration::from_micros(200));
    }

    let mut merged = NetworkStats::new();
    let mut per_shard = Vec::with_capacity(shards);
    let mut per_shard_profiles = Vec::with_capacity(shards);
    let mut trace = TraceDump::default();
    let mut all_samples = Vec::new();
    let mut final_cycle = 0;
    let mut completed = true;
    for handle in handles {
        let (outcome, samples) = handle
            .join()
            .map_err(|_| proto_err("worker thread panicked"))??;
        merged.merge(&outcome.stats);
        final_cycle = final_cycle.max(outcome.final_now);
        completed &= outcome.completed;
        per_shard.push(outcome.stats);
        per_shard_profiles.push(outcome.profile);
        trace.merge(outcome.trace);
        all_samples.extend(samples);
    }
    if matches!(spec.run, RunKind::Cycles(_)) {
        completed = true;
    }
    Ok(DistOutcome {
        stats: merged,
        per_shard,
        final_cycle,
        completed,
        cut_links,
        shards,
        restarts: 0,
        per_shard_profiles,
        trace,
        samples: all_samples,
    })
}
