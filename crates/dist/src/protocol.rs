//! The coordinator↔worker control protocol.
//!
//! A handful of length-prefixed frames: handshake and shard assignment, data
//! plane address exchange, the start signal, the credit-counting termination
//! probe/ledger/directive loop, and the final per-shard report.

use crate::spec::DistSpec;
use crate::wire::{decode_stats, encode_stats, Dec, Enc, WIRE_VERSION};
use hornet_net::stats::NetworkStats;
use hornet_obs::metrics::TelemetrySample;
use hornet_obs::profile::StallProfile;
use hornet_shard::termination::LedgerState;
use std::io;

/// How worker data planes reach each other.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Unix domain stream sockets (co-located processes).
    UnixSocket,
    /// TCP loopback / cross-machine sockets.
    Tcp,
    /// Shared-memory segments (co-located processes).
    Shm,
}

impl TransportKind {
    /// Wire tag.
    pub fn to_u8(self) -> u8 {
        match self {
            TransportKind::UnixSocket => 0,
            TransportKind::Tcp => 1,
            TransportKind::Shm => 2,
        }
    }

    /// Parses a wire tag.
    pub fn from_u8(v: u8) -> io::Result<Self> {
        Ok(match v {
            0 => TransportKind::UnixSocket,
            1 => TransportKind::Tcp,
            2 => TransportKind::Shm,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad transport kind",
                ))
            }
        })
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "unix" => Some(TransportKind::UnixSocket),
            "tcp" => Some(TransportKind::Tcp),
            "shm" => Some(TransportKind::Shm),
            _ => None,
        }
    }
}

/// A control-plane message.
#[derive(Debug)]
pub enum CtrlMsg {
    /// Worker → coordinator: first frame after connecting.
    Hello {
        /// Must equal [`WIRE_VERSION`].
        version: u32,
        /// Host-list mode: the `host:port` this worker's data plane is
        /// reachable at from the other machines (empty when the coordinator
        /// spawned the worker locally).
        advertise: String,
        /// Run handshake nonce: must match the coordinator's, so a stray
        /// worker (stale respawn, wrong run, port scan) cannot join.
        nonce: u64,
    },
    /// Coordinator → worker: shard assignment.
    Assign {
        /// This worker's shard.
        shard: u32,
        /// Total shard count.
        shards: u32,
        /// The workload.
        spec: Box<DistSpec>,
        /// Data-plane transport.
        transport: TransportKind,
        /// Unix data-plane listen path for this worker (empty for TCP, which
        /// binds an ephemeral port, and for shm).
        listen: String,
        /// Liveness heartbeat interval the worker must honor (milliseconds;
        /// 0 disables heartbeats).
        heartbeat_ms: u64,
        /// Shard checkpoint to restore before simulating (crash recovery).
        resume: Option<Vec<u8>>,
    },
    /// Worker → coordinator: data plane bound at `addr` (empty for shm).
    Listening {
        /// The worker's data-plane address.
        addr: String,
    },
    /// Coordinator → worker: every worker's data-plane address
    /// (socket transports) as `(shard, addr)`.
    PeerMap {
        /// Shard → address pairs.
        entries: Vec<(u32, String)>,
    },
    /// Coordinator → worker: shared-memory segment paths per adjacency as
    /// `(lo, hi, path)`.
    ShmMap {
        /// Adjacency → segment path triples.
        entries: Vec<(u32, u32, String)>,
    },
    /// Coordinator → worker: begin simulating.
    Start,
    /// Coordinator → worker: report your termination ledger.
    Probe {
        /// Round identifier echoed in the reply.
        round: u64,
    },
    /// Worker → coordinator: ledger reply.
    Ledger {
        /// Echoed probe round.
        round: u64,
        /// Ledger version at read time.
        version: u64,
        /// The ledger state.
        state: LedgerState,
    },
    /// Coordinator → worker: fast-forward every clock to `target`.
    Skip {
        /// Jump target cycle.
        target: u64,
    },
    /// Coordinator → worker: completion declared, stop simulating.
    Stop,
    /// Worker → coordinator: run finished.
    Done {
        /// The cycle the worker stopped at.
        final_now: u64,
        /// Every local agent finished and the shard drained.
        completed: bool,
        /// Per-shard statistics.
        stats: Box<NetworkStats>,
        /// Wall-time attribution of the worker's run (all zeros unless the
        /// spec asked for profiling).
        profile: StallProfile,
        /// Encoded [`hornet_obs::trace::TraceDump`] of the shard's tile and
        /// runtime rings (empty when tracing was off).
        trace: Vec<u8>,
    },
    /// Worker → worker: identifies the connecting shard on a data socket.
    PeerHello {
        /// The connecting shard.
        from: u32,
    },
    /// Worker → coordinator: periodic liveness signal.
    Heartbeat {
        /// The shard's current simulated cycle.
        cycle: u64,
    },
    /// Worker → coordinator: a shard checkpoint captured at a rendezvous
    /// cycle. The coordinator commits a cycle once every shard reported it.
    Checkpoint {
        /// The rendezvous cycle.
        cycle: u64,
        /// The serialized shard state ([`hornet_shard::snapshot`] layout).
        data: Vec<u8>,
    },
    /// Worker → coordinator: periodic telemetry sample (wire v4). The
    /// coordinator aggregates these into the live metrics stream.
    Telemetry {
        /// The sample.
        sample: Box<TelemetrySample>,
    },
}

impl CtrlMsg {
    /// Encodes the message as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            CtrlMsg::Hello {
                version,
                advertise,
                nonce,
            } => {
                e.u8(0).u32(*version).str(advertise).u64(*nonce);
            }
            CtrlMsg::Assign {
                shard,
                shards,
                spec,
                transport,
                listen,
                heartbeat_ms,
                resume,
            } => {
                e.u8(1).u32(*shard).u32(*shards).u8(transport.to_u8());
                e.str(listen);
                spec.encode(&mut e);
                e.u64(*heartbeat_ms);
                match resume {
                    Some(data) => {
                        e.u8(1).blob(data);
                    }
                    None => {
                        e.u8(0);
                    }
                }
            }
            CtrlMsg::Listening { addr } => {
                e.u8(2).str(addr);
            }
            CtrlMsg::PeerMap { entries } => {
                e.u8(3).u32(entries.len() as u32);
                for (shard, addr) in entries {
                    e.u32(*shard).str(addr);
                }
            }
            CtrlMsg::ShmMap { entries } => {
                e.u8(4).u32(entries.len() as u32);
                for (lo, hi, path) in entries {
                    e.u32(*lo).u32(*hi).str(path);
                }
            }
            CtrlMsg::Start => {
                e.u8(5);
            }
            CtrlMsg::Probe { round } => {
                e.u8(6).u64(*round);
            }
            CtrlMsg::Ledger {
                round,
                version,
                state,
            } => {
                e.u8(7).u64(*round).u64(*version);
                e.u64(state.busy)
                    .u8(u8::from(state.finished))
                    .u64(state.next_event)
                    .u64(state.sent)
                    .u64(state.recv)
                    .u64(state.cycle);
            }
            CtrlMsg::Skip { target } => {
                e.u8(8).u64(*target);
            }
            CtrlMsg::Stop => {
                e.u8(9);
            }
            CtrlMsg::Done {
                final_now,
                completed,
                stats,
                profile,
                trace,
            } => {
                e.u8(10).u64(*final_now).u8(u8::from(*completed));
                encode_stats(&mut e, stats);
                e.u64(profile.compute_ns)
                    .u64(profile.wait_ns)
                    .u64(profile.ingest_ns)
                    .u64(profile.flush_ns);
                e.blob(trace);
            }
            CtrlMsg::PeerHello { from } => {
                e.u8(11).u32(*from);
            }
            CtrlMsg::Heartbeat { cycle } => {
                e.u8(12).u64(*cycle);
            }
            CtrlMsg::Checkpoint { cycle, data } => {
                e.u8(13).u64(*cycle).blob(data);
            }
            CtrlMsg::Telemetry { sample } => {
                let mut buf = Vec::new();
                sample.encode_into(&mut buf);
                e.u8(14).blob(&buf);
            }
        }
        e.into_bytes()
    }

    /// Decodes one frame payload.
    pub fn decode(buf: &[u8]) -> io::Result<CtrlMsg> {
        let mut d = Dec::new(buf);
        Ok(match d.u8()? {
            0 => CtrlMsg::Hello {
                version: d.u32()?,
                advertise: d.str()?,
                nonce: d.u64()?,
            },
            1 => {
                let shard = d.u32()?;
                let shards = d.u32()?;
                let transport = TransportKind::from_u8(d.u8()?)?;
                let listen = d.str()?;
                let spec = Box::new(DistSpec::decode(&mut d)?);
                let heartbeat_ms = d.u64()?;
                let resume = match d.u8()? {
                    0 => None,
                    _ => Some(d.blob()?.to_vec()),
                };
                CtrlMsg::Assign {
                    shard,
                    shards,
                    spec,
                    transport,
                    listen,
                    heartbeat_ms,
                    resume,
                }
            }
            2 => CtrlMsg::Listening { addr: d.str()? },
            3 => {
                let n = d.u32()?;
                let entries = (0..n)
                    .map(|_| Ok((d.u32()?, d.str()?)))
                    .collect::<io::Result<Vec<_>>>()?;
                CtrlMsg::PeerMap { entries }
            }
            4 => {
                let n = d.u32()?;
                let entries = (0..n)
                    .map(|_| Ok((d.u32()?, d.u32()?, d.str()?)))
                    .collect::<io::Result<Vec<_>>>()?;
                CtrlMsg::ShmMap { entries }
            }
            5 => CtrlMsg::Start,
            6 => CtrlMsg::Probe { round: d.u64()? },
            7 => CtrlMsg::Ledger {
                round: d.u64()?,
                version: d.u64()?,
                state: LedgerState {
                    busy: d.u64()?,
                    finished: d.u8()? != 0,
                    next_event: d.u64()?,
                    sent: d.u64()?,
                    recv: d.u64()?,
                    cycle: d.u64()?,
                },
            },
            8 => CtrlMsg::Skip { target: d.u64()? },
            9 => CtrlMsg::Stop,
            10 => CtrlMsg::Done {
                final_now: d.u64()?,
                completed: d.u8()? != 0,
                stats: Box::new(decode_stats(&mut d)?),
                profile: StallProfile {
                    compute_ns: d.u64()?,
                    wait_ns: d.u64()?,
                    ingest_ns: d.u64()?,
                    flush_ns: d.u64()?,
                },
                trace: d.blob()?.to_vec(),
            },
            11 => CtrlMsg::PeerHello { from: d.u32()? },
            12 => CtrlMsg::Heartbeat { cycle: d.u64()? },
            13 => CtrlMsg::Checkpoint {
                cycle: d.u64()?,
                data: d.blob()?.to_vec(),
            },
            14 => {
                let blob = d.blob()?;
                let mut cursor = blob;
                CtrlMsg::Telemetry {
                    sample: Box::new(TelemetrySample::decode_from(&mut cursor)?),
                }
            }
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad control tag {t}"),
                ))
            }
        })
    }
}

/// The hello every worker opens with; `advertise` is empty for locally
/// spawned workers and `host:port` for host-list (remote) workers, and
/// `nonce` must echo the coordinator's run nonce.
pub fn hello(advertise: &str, nonce: u64) -> CtrlMsg {
    CtrlMsg::Hello {
        version: WIRE_VERSION,
        advertise: advertise.to_string(),
        nonce,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_round_trip() {
        let msgs = vec![
            hello("node7.cluster:9101", 0xfeed_beef_dead_cafe),
            CtrlMsg::Assign {
                shard: 2,
                shards: 4,
                spec: Box::new(DistSpec::default()),
                transport: TransportKind::UnixSocket,
                listen: "/tmp/x.sock".into(),
                heartbeat_ms: 1000,
                resume: Some(vec![1, 2, 3]),
            },
            CtrlMsg::Listening {
                addr: "127.0.0.1:4000".into(),
            },
            CtrlMsg::PeerMap {
                entries: vec![(0, "a".into()), (1, "b".into())],
            },
            CtrlMsg::ShmMap {
                entries: vec![(0, 1, "/dev/shm/x".into())],
            },
            CtrlMsg::Start,
            CtrlMsg::Probe { round: 7 },
            CtrlMsg::Ledger {
                round: 7,
                version: 42,
                state: LedgerState {
                    busy: 0,
                    finished: true,
                    next_event: u64::MAX,
                    sent: 100,
                    recv: 100,
                    cycle: 500,
                },
            },
            CtrlMsg::Skip { target: 999 },
            CtrlMsg::Stop,
            CtrlMsg::Done {
                final_now: 800,
                completed: true,
                stats: Box::new(NetworkStats::new()),
                profile: StallProfile {
                    compute_ns: 1,
                    wait_ns: 2,
                    ingest_ns: 3,
                    flush_ns: 4,
                },
                trace: vec![7; 32],
            },
            CtrlMsg::PeerHello { from: 3 },
            CtrlMsg::Heartbeat { cycle: 1234 },
            CtrlMsg::Checkpoint {
                cycle: 512,
                data: vec![9; 64],
            },
            CtrlMsg::Telemetry {
                sample: Box::new(TelemetrySample {
                    shard: 3,
                    cycle: 4096,
                    received: 17,
                    busy: 900,
                    delivered_packets: 10,
                    delivered_flits: 40,
                    injected_flits: 44,
                    buffered_flits: 4,
                    profile: StallProfile {
                        compute_ns: 5,
                        wait_ns: 6,
                        ingest_ns: 7,
                        flush_ns: 8,
                    },
                    metrics: vec![("batch_wait_ns.count".into(), 12)],
                }),
            },
        ];
        for msg in msgs {
            let bytes = msg.encode();
            let back = CtrlMsg::decode(&bytes).unwrap();
            // Spot-check round-trip of the discriminant and one payload.
            assert_eq!(
                std::mem::discriminant(&back),
                std::mem::discriminant(&msg),
                "{msg:?}"
            );
            if let (CtrlMsg::Ledger { state: a, .. }, CtrlMsg::Ledger { state: b, .. }) =
                (&msg, &back)
            {
                assert_eq!(a, b);
            }
            if let (
                CtrlMsg::Done {
                    profile: a,
                    trace: ta,
                    ..
                },
                CtrlMsg::Done {
                    profile: b,
                    trace: tb,
                    ..
                },
            ) = (&msg, &back)
            {
                assert_eq!(a, b);
                assert_eq!(ta, tb);
            }
            if let (CtrlMsg::Telemetry { sample: a }, CtrlMsg::Telemetry { sample: b }) =
                (&msg, &back)
            {
                assert_eq!(a, b);
            }
        }
    }
}
