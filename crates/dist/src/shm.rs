//! The shared-memory segment transport for co-located worker processes.
//!
//! One segment per shard adjacency, created (zero-filled) by the coordinator
//! and mapped by both workers. The layout is derived deterministically from
//! the canonical channel list, so the two sides agree on every offset
//! without negotiation:
//!
//! ```text
//! [ progress lo→hi : u64 ][ progress hi→lo : u64 ]
//! then, for direction lo→hi, one block per channel:
//!     [ flit ring: head u64, tail u64, capacity × FLIT_SLOT bytes ]
//!     [ credit ring: head u64, tail u64,
//!       (capacity + 1 + sync_depth) × CREDIT_SLOT bytes ]
//! then the same for direction hi→lo,
//! then one variable-length payload byte ring per direction:
//!     [ head u64, tail u64, payload_capacity bytes ]
//! ```
//!
//! Flit rings carry sender→receiver traffic of their direction; the credit
//! rings beside them carry the matching receiver→sender credit returns
//! (`sync_depth` extra slots absorb the per-cycle credit messages a loose
//! run coalesces between batch-boundary ingests). The payload rings carry
//! length-prefixed packet records — a packet's payload is written *before*
//! its tail flit, so a receiver that observes the flit always finds the
//! payload. All cursors are cross-process atomics with the same
//! acquire/release protocol as the in-process [`hornet_net::spsc::Spsc`].

use crate::transport::BoundaryTransport;
use crate::wire::{
    decode_credit, decode_flit, decode_packet, encode_credit, encode_flit, encode_packet, Dec, Enc,
    CREDIT_WIRE_BYTES, FLIT_WIRE_BYTES,
};
use crate::wiring::NeighborWiring;
use hornet_net::boundary::BoundaryLink;
use hornet_net::ids::Cycle;
use hornet_shard::driver::PayloadChannel;
use hornet_shard::sys;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes per flit slot (wire encoding padded to an 8-byte multiple).
const FLIT_SLOT: usize = FLIT_WIRE_BYTES.next_multiple_of(8);
/// Bytes per credit slot.
const CREDIT_SLOT: usize = CREDIT_WIRE_BYTES.next_multiple_of(8);
/// Default payload ring size per direction: generous for the word-sized
/// protocol payloads of the memory/CPU workloads (writers spin briefly when
/// full — the peer drains the ring during its waits, so this bounds burst
/// size, not correctness).
const PAYLOAD_RING_BYTES: usize = 256 << 10;

/// The deterministic layout of one adjacency segment.
#[derive(Clone, Debug)]
pub struct ShmLayout {
    /// Flit capacities of the lo→hi channels, in canonical order.
    pub lo_to_hi: Vec<usize>,
    /// Flit capacities of the hi→lo channels, in canonical order.
    pub hi_to_lo: Vec<usize>,
    /// Extra credit-ring slots per channel (≥ the run's `slack + quantum`,
    /// so batch-coalesced credit messages never overflow).
    pub sync_depth: usize,
    /// Payload byte-ring size per direction.
    pub payload_capacity: usize,
}

fn ring_bytes(capacity: usize, slot: usize) -> usize {
    16 + capacity * slot
}

impl ShmLayout {
    fn channel_bytes(&self, capacity: usize) -> usize {
        ring_bytes(capacity, FLIT_SLOT) + ring_bytes(capacity + 1 + self.sync_depth, CREDIT_SLOT)
    }

    fn channels_len(&self) -> usize {
        self.lo_to_hi
            .iter()
            .chain(&self.hi_to_lo)
            .map(|&c| self.channel_bytes(c))
            .sum::<usize>()
    }

    /// Total segment size, in bytes.
    pub fn total_len(&self) -> usize {
        16 + self.channels_len() + 2 * (16 + self.payload_capacity)
    }

    /// Byte offset of the progress word of a direction (0 = lo→hi).
    fn progress_offset(dir: usize) -> usize {
        dir * 8
    }

    /// Byte offset of channel `ch` of direction `dir`.
    fn channel_offset(&self, dir: usize, ch: usize) -> usize {
        let mut off = 16;
        let caps = if dir == 0 {
            &self.lo_to_hi
        } else {
            &self.hi_to_lo
        };
        if dir == 1 {
            off += self
                .lo_to_hi
                .iter()
                .map(|&c| self.channel_bytes(c))
                .sum::<usize>();
        }
        off + caps[..ch]
            .iter()
            .map(|&c| self.channel_bytes(c))
            .sum::<usize>()
    }

    /// Byte offset of the payload ring of a direction (0 = lo→hi).
    fn payload_offset(&self, dir: usize) -> usize {
        16 + self.channels_len() + dir * (16 + self.payload_capacity)
    }
}

/// A mapped adjacency segment.
pub struct ShmSegment {
    ptr: *mut u8,
    len: usize,
    path: PathBuf,
    /// Keep the backing file open for the mapping's lifetime.
    _file: File,
    /// Whether `drop` should unlink the backing file (creator side).
    owns_file: bool,
}

// SAFETY: the raw pointer is a shared file mapping; all concurrent access
// goes through atomics with the SPSC protocol.
unsafe impl Send for ShmSegment {}
unsafe impl Sync for ShmSegment {}

impl ShmSegment {
    /// Creates (and zero-fills) the segment file and maps it.
    pub fn create(path: &Path, layout: &ShmLayout) -> io::Result<Arc<Self>> {
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(path)?;
        file.set_len(layout.total_len() as u64)?;
        Self::map(file, path, layout, true)
    }

    /// Maps an existing segment file created by [`create`](Self::create).
    pub fn open(path: &Path, layout: &ShmLayout) -> io::Result<Arc<Self>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        if file.metadata()?.len() < layout.total_len() as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "shared segment smaller than its layout",
            ));
        }
        Self::map(file, path, layout, false)
    }

    fn map(file: File, path: &Path, layout: &ShmLayout, owns_file: bool) -> io::Result<Arc<Self>> {
        use std::os::fd::AsRawFd;
        let len = layout.total_len().max(1);
        let ptr = unsafe { sys::map_shared(file.as_raw_fd(), len) }.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::Unsupported,
                "shared file mappings unavailable on this platform (use the socket transport)",
            )
        })?;
        Ok(Arc::new(Self {
            ptr,
            len,
            path: path.to_path_buf(),
            _file: file,
            owns_file,
        }))
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn atomic_at(&self, offset: usize) -> &AtomicU64 {
        debug_assert!(offset + 8 <= self.len && offset.is_multiple_of(8));
        // SAFETY: in-bounds, 8-aligned, and all cross-process access to this
        // word is atomic.
        unsafe { &*(self.ptr.add(offset) as *const AtomicU64) }
    }
}

impl Drop for ShmSegment {
    fn drop(&mut self) {
        unsafe { sys::unmap(self.ptr, self.len) };
        if self.owns_file {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// One SPSC ring inside a segment (fixed slot size).
struct ShmRing {
    seg: Arc<ShmSegment>,
    base: usize,
    capacity: u64,
    slot: usize,
}

impl ShmRing {
    fn head(&self) -> &AtomicU64 {
        self.seg.atomic_at(self.base)
    }
    fn tail(&self) -> &AtomicU64 {
        self.seg.atomic_at(self.base + 8)
    }

    fn push(&self, item: &[u8]) -> bool {
        debug_assert_eq!(item.len(), self.slot);
        let tail = self.tail().load(Ordering::Relaxed);
        let head = self.head().load(Ordering::Acquire);
        if tail - head >= self.capacity {
            return false;
        }
        let off = self.base + 16 + (tail % self.capacity) as usize * self.slot;
        // SAFETY: in-bounds slot owned by the producer until the tail store.
        unsafe {
            std::ptr::copy_nonoverlapping(item.as_ptr(), self.seg.ptr.add(off), self.slot);
        }
        self.tail().store(tail + 1, Ordering::Release);
        true
    }

    fn pop(&self, out: &mut [u8]) -> bool {
        debug_assert_eq!(out.len(), self.slot);
        let head = self.head().load(Ordering::Relaxed);
        let tail = self.tail().load(Ordering::Acquire);
        if head >= tail {
            return false;
        }
        let off = self.base + 16 + (head % self.capacity) as usize * self.slot;
        // SAFETY: in-bounds slot published by the producer's tail store.
        unsafe {
            std::ptr::copy_nonoverlapping(self.seg.ptr.add(off), out.as_mut_ptr(), self.slot);
        }
        self.head().store(head + 1, Ordering::Release);
        true
    }
}

/// A variable-record SPSC byte ring inside a segment (length-prefixed
/// records, wraparound copies, monotone byte cursors). Carries the packet
/// payload records that follow tail flits across the adjacency.
struct ShmByteRing {
    seg: Arc<ShmSegment>,
    base: usize,
    capacity: u64,
}

impl ShmByteRing {
    fn head(&self) -> &AtomicU64 {
        self.seg.atomic_at(self.base)
    }
    fn tail(&self) -> &AtomicU64 {
        self.seg.atomic_at(self.base + 8)
    }

    fn copy_in(&self, pos: u64, bytes: &[u8]) {
        let off = (pos % self.capacity) as usize;
        let first = bytes.len().min(self.capacity as usize - off);
        // SAFETY: the producer owns [tail, tail+len) until its tail store;
        // both chunks are in-bounds of the ring's data area.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                self.seg.ptr.add(self.base + 16 + off),
                first,
            );
            if first < bytes.len() {
                std::ptr::copy_nonoverlapping(
                    bytes.as_ptr().add(first),
                    self.seg.ptr.add(self.base + 16),
                    bytes.len() - first,
                );
            }
        }
    }

    fn copy_out(&self, pos: u64, out: &mut [u8]) {
        let off = (pos % self.capacity) as usize;
        let first = out.len().min(self.capacity as usize - off);
        // SAFETY: the consumer owns [head, head+len) until its head store.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.seg.ptr.add(self.base + 16 + off),
                out.as_mut_ptr(),
                first,
            );
            if first < out.len() {
                std::ptr::copy_nonoverlapping(
                    self.seg.ptr.add(self.base + 16),
                    out.as_mut_ptr().add(first),
                    out.len() - first,
                );
            }
        }
    }

    /// Appends one length-prefixed record; `false` when the ring lacks room
    /// (the caller retries — the peer drains during its waits).
    fn push(&self, bytes: &[u8]) -> bool {
        let need = 4 + bytes.len() as u64;
        assert!(
            need <= self.capacity,
            "payload record larger than the shm payload ring"
        );
        let tail = self.tail().load(Ordering::Relaxed);
        let head = self.head().load(Ordering::Acquire);
        if self.capacity - (tail - head) < need {
            return false;
        }
        self.copy_in(tail, &(bytes.len() as u32).to_le_bytes());
        self.copy_in(tail + 4, bytes);
        self.tail().store(tail + need, Ordering::Release);
        true
    }

    /// Pops one record into `out` (replacing its contents).
    fn pop(&self, out: &mut Vec<u8>) -> bool {
        let head = self.head().load(Ordering::Relaxed);
        let tail = self.tail().load(Ordering::Acquire);
        if head == tail {
            return false;
        }
        let mut len4 = [0u8; 4];
        self.copy_out(head, &mut len4);
        let len = u32::from_le_bytes(len4) as usize;
        out.resize(len, 0);
        self.copy_out(head + 4, out);
        self.head().store(head + 4 + len as u64, Ordering::Release);
        true
    }
}

/// The shared-memory implementation of [`BoundaryTransport`].
pub struct ShmTransport {
    seg: Arc<ShmSegment>,
    /// Our send direction's flit rings (we produce) and credit rings (we
    /// consume credits the peer returned for them).
    out_flit_rings: Vec<ShmRing>,
    out_credit_rings: Vec<ShmRing>,
    /// The peer direction's flit rings (we consume) and credit rings (we
    /// produce credits for the peer's flits).
    in_flit_rings: Vec<ShmRing>,
    in_credit_rings: Vec<ShmRing>,
    /// Payload rings: ours (we write packet records) and the peer's (we
    /// deposit what it wrote).
    out_payload_ring: ShmByteRing,
    in_payload_ring: ShmByteRing,
    our_progress: usize,
    peer_progress: usize,
    out_links: Vec<Arc<BoundaryLink>>,
    in_links: Vec<Arc<BoundaryLink>>,
    /// Reusable payload record scratch.
    scratch: Vec<u8>,
}

impl ShmTransport {
    /// Builds the transport over `seg` for the side whose shard id is the
    /// lower (`is_lo`) or higher end of the adjacency.
    pub fn new(
        seg: Arc<ShmSegment>,
        layout: &ShmLayout,
        is_lo: bool,
        wiring: &NeighborWiring,
    ) -> Self {
        let (our_dir, peer_dir) = if is_lo { (0, 1) } else { (1, 0) };
        let rings = |dir: usize, caps: &[usize]| -> (Vec<ShmRing>, Vec<ShmRing>) {
            let mut flits = Vec::with_capacity(caps.len());
            let mut credits = Vec::with_capacity(caps.len());
            for (ch, &cap) in caps.iter().enumerate() {
                let base = layout.channel_offset(dir, ch);
                flits.push(ShmRing {
                    seg: Arc::clone(&seg),
                    base,
                    capacity: cap as u64,
                    slot: FLIT_SLOT,
                });
                credits.push(ShmRing {
                    seg: Arc::clone(&seg),
                    base: base + ring_bytes(cap, FLIT_SLOT),
                    capacity: (cap + 1 + layout.sync_depth) as u64,
                    slot: CREDIT_SLOT,
                });
            }
            (flits, credits)
        };
        let our_caps: Vec<usize> = wiring.out_links.iter().map(|l| l.capacity()).collect();
        let peer_caps: Vec<usize> = wiring.in_links.iter().map(|l| l.capacity()).collect();
        let (out_flit_rings, out_credit_rings) = rings(our_dir, &our_caps);
        let (in_flit_rings, in_credit_rings) = rings(peer_dir, &peer_caps);
        let payload_ring = |dir: usize| ShmByteRing {
            seg: Arc::clone(&seg),
            base: layout.payload_offset(dir),
            capacity: layout.payload_capacity as u64,
        };
        Self {
            out_flit_rings,
            out_credit_rings,
            in_flit_rings,
            in_credit_rings,
            out_payload_ring: payload_ring(our_dir),
            in_payload_ring: payload_ring(peer_dir),
            our_progress: ShmLayout::progress_offset(our_dir),
            peer_progress: ShmLayout::progress_offset(peer_dir),
            out_links: wiring.out_links.clone(),
            in_links: wiring.in_links.clone(),
            seg,
            scratch: Vec::new(),
        }
    }

    /// The layout of the adjacency `(lo, hi)` given each direction's channel
    /// capacities in canonical order and the run's synchronization depth
    /// (`slack + quantum`; sizes the per-channel credit-ring headroom).
    pub fn layout(lo_to_hi: Vec<usize>, hi_to_lo: Vec<usize>, sync_depth: usize) -> ShmLayout {
        ShmLayout {
            lo_to_hi,
            hi_to_lo,
            sync_depth,
            payload_capacity: PAYLOAD_RING_BYTES,
        }
    }

    fn deposit_arrivals(&mut self, payloads: &dyn PayloadChannel) {
        drain_payload_ring(&self.in_payload_ring, &mut self.scratch, payloads);
    }
}

/// Drains every payload record from `ring` into the payload channel.
/// Free-standing so the pump's full-ring spin can call it while other
/// `self` fields are borrowed.
fn drain_payload_ring(ring: &ShmByteRing, scratch: &mut Vec<u8>, payloads: &dyn PayloadChannel) {
    while ring.pop(scratch) {
        let packet = decode_packet(&mut Dec::new(scratch)).expect("shm payload corrupt");
        payloads.deposit(packet);
    }
}

impl BoundaryTransport for ShmTransport {
    fn pump(
        &mut self,
        cycle: Cycle,
        payloads: &dyn PayloadChannel,
        _flush: bool,
    ) -> io::Result<()> {
        let forward_payloads = !payloads.shared();
        let mut slot = [0u8; FLIT_SLOT];
        let out_payload_ring = &self.out_payload_ring;
        let in_payload_ring = &self.in_payload_ring;
        let scratch = &mut self.scratch;
        for (link, ring) in self.out_links.iter().zip(&self.out_flit_rings) {
            link.drain_staged_flits(|f| {
                if forward_payloads && f.kind.is_tail() {
                    // The payload record is pushed *before* its tail flit:
                    // a peer that observes the flit always finds the
                    // payload. Empty payloads are claimed (the parked
                    // packet would leak) but not written.
                    if let Some(p) = payloads.claim(f.packet) {
                        if !p.payload.is_empty() {
                            let mut e = Enc::new();
                            encode_packet(&mut e, &p);
                            let mut spins = 0u64;
                            while !out_payload_ring.push(e.bytes()) {
                                // Our ring is full until the peer drains it.
                                // The peer may itself be spinning in *its*
                                // pump on the opposite ring, so drain our
                                // inbound payloads here — that is the
                                // peer's outbound ring, which unblocks it
                                // and breaks the mutual-wait cycle.
                                drain_payload_ring(in_payload_ring, scratch, payloads);
                                spins += 1;
                                if spins.is_multiple_of(128) {
                                    std::thread::yield_now();
                                } else {
                                    std::hint::spin_loop();
                                }
                                assert!(spins < 1 << 30, "shm payload ring wedged");
                            }
                        }
                    }
                }
                let mut e = Enc::new();
                encode_flit(&mut e, &f);
                slot[..FLIT_WIRE_BYTES].copy_from_slice(e.bytes());
                // End-to-end credits bound occupancy: cannot be full.
                let ok = ring.push(&slot);
                debug_assert!(ok, "shm flit ring overflow despite credit window");
            });
        }
        let mut cslot = [0u8; CREDIT_SLOT];
        for (link, ring) in self.in_links.iter().zip(&self.in_credit_rings) {
            while let Some(c) = link.take_staged_credit() {
                let mut e = Enc::new();
                encode_credit(&mut e, &c);
                cslot[..CREDIT_WIRE_BYTES].copy_from_slice(e.bytes());
                let ok = ring.push(&cslot);
                debug_assert!(ok, "shm credit ring overflow");
            }
        }
        // Progress last: the peer's wait-then-ingest sees everything above.
        self.seg
            .atomic_at(self.our_progress)
            .store(cycle, Ordering::Release);
        Ok(())
    }

    fn ingest(&mut self, payloads: &dyn PayloadChannel) {
        // Payloads first: a tail flit observed below must find its payload
        // already deposited.
        self.deposit_arrivals(payloads);
        let mut slot = [0u8; FLIT_SLOT];
        for (link, ring) in self.in_links.iter().zip(&self.in_flit_rings) {
            while ring.pop(&mut slot) {
                let flit =
                    decode_flit(&mut Dec::new(&slot[..FLIT_WIRE_BYTES])).expect("shm flit corrupt");
                let ok = link.inject_flit(flit);
                debug_assert!(ok, "local staging overflow on shm ingest");
            }
        }
        // Second payload pass: the peer writes a payload before its tail
        // flit, so any flit drained above that raced the first pass has its
        // payload visible by now.
        self.deposit_arrivals(payloads);
        let mut cslot = [0u8; CREDIT_SLOT];
        for (link, ring) in self.out_links.iter().zip(&self.out_credit_rings) {
            while ring.pop(&mut cslot) {
                let credit = decode_credit(&mut Dec::new(&cslot[..CREDIT_WIRE_BYTES]))
                    .expect("shm credit corrupt");
                let ok = link.inject_credit(credit);
                debug_assert!(ok, "local credit staging overflow on shm ingest");
            }
        }
    }

    fn peer_progress(&self) -> Cycle {
        self.seg
            .atomic_at(self.peer_progress)
            .load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornet_net::flit::{FlitKind, FlitStats};
    use hornet_net::ids::{FlowId, NodeId, PacketId};

    fn flit(seq: u32) -> hornet_net::flit::Flit {
        hornet_net::flit::Flit {
            packet: PacketId::new(1),
            flow: FlowId::new(1),
            original_flow: FlowId::new(1),
            kind: FlitKind::Body,
            seq,
            packet_len: 8,
            dst: NodeId::new(1),
            src: NodeId::new(0),
            visible_at: 9,
            stats: FlitStats::default(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hornet-shm-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn layout_offsets_are_disjoint_and_in_bounds() {
        let layout = ShmLayout {
            lo_to_hi: vec![4, 4, 2],
            hi_to_lo: vec![3],
            sync_depth: 5,
            payload_capacity: 1024,
        };
        let total = layout.total_len();
        let mut spans: Vec<(usize, usize)> = vec![(0, 16)];
        for (dir, caps) in [(0usize, &layout.lo_to_hi), (1, &layout.hi_to_lo)] {
            for (ch, &cap) in caps.iter().enumerate() {
                let off = layout.channel_offset(dir, ch);
                spans.push((off, off + layout.channel_bytes(cap)));
            }
        }
        for dir in 0..2 {
            let off = layout.payload_offset(dir);
            spans.push((off, off + 16 + layout.payload_capacity));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping spans {spans:?}");
        }
        assert_eq!(spans.last().unwrap().1, total);
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn shm_transport_round_trips_flits_and_credits() {
        use hornet_net::boundary::CreditMsg;
        let path = tmp("roundtrip");
        // One channel each way, capacity 4.
        let layout = ShmTransport::layout(vec![4], vec![4], 1);
        let seg_lo = ShmSegment::create(&path, &layout).unwrap();
        let seg_hi = ShmSegment::open(&path, &layout).unwrap();

        let lo_out: Vec<Arc<BoundaryLink>> = vec![BoundaryLink::new(4)];
        let lo_in: Vec<Arc<BoundaryLink>> = vec![BoundaryLink::new(4)];
        let hi_out: Vec<Arc<BoundaryLink>> = vec![BoundaryLink::new(4)];
        let hi_in: Vec<Arc<BoundaryLink>> = vec![BoundaryLink::new(4)];
        let mut t_lo = ShmTransport::new(
            seg_lo,
            &layout,
            true,
            &NeighborWiring {
                peer: 1,
                out_links: lo_out.clone(),
                in_links: lo_in.clone(),
            },
        );
        let mut t_hi = ShmTransport::new(
            seg_hi,
            &layout,
            false,
            &NeighborWiring {
                peer: 0,
                out_links: hi_out.clone(),
                in_links: hi_in.clone(),
            },
        );

        use hornet_shard::driver::NoPayloads;
        // lo sends two flits, pumps, publishes cycle 3.
        assert!(lo_out[0].push(flit(0)));
        assert!(lo_out[0].push(flit(1)));
        t_lo.pump(3, &NoPayloads, true).unwrap();
        assert_eq!(t_hi.peer_progress(), 3);
        t_hi.ingest(&NoPayloads);
        assert_eq!(hi_in[0].in_flight(), 2);

        // hi returns one credit; lo applies it after ingesting.
        assert!(hi_in[0].inject_credit(CreditMsg { cycle: 4, count: 2 }));
        // inject_credit staged it on hi's side? No: staged credits travel via
        // take_staged_credit during pump — emulate the shard loop by staging
        // through the same ring the worker uses.
        t_hi.pump(4, &NoPayloads, true).unwrap();
        assert_eq!(t_lo.peer_progress(), 4);
        t_lo.ingest(&NoPayloads);
        lo_out[0].apply_credits(None);
        assert_eq!(lo_out[0].occupancy(), 0);
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn shm_transport_carries_payload_records() {
        use hornet_net::flit::{Packet, Payload};
        use hornet_net::payload::PayloadStore;
        use hornet_shard::driver::{PayloadChannel, PayloadEndpoint};

        let path = tmp("payloads");
        let layout = ShmTransport::layout(vec![4], vec![4], 1);
        let seg_lo = ShmSegment::create(&path, &layout).unwrap();
        let seg_hi = ShmSegment::open(&path, &layout).unwrap();
        let lo_out: Vec<Arc<BoundaryLink>> = vec![BoundaryLink::new(4)];
        let lo_in: Vec<Arc<BoundaryLink>> = vec![BoundaryLink::new(4)];
        let hi_out: Vec<Arc<BoundaryLink>> = vec![BoundaryLink::new(4)];
        let hi_in: Vec<Arc<BoundaryLink>> = vec![BoundaryLink::new(4)];
        let mut t_lo = ShmTransport::new(
            seg_lo,
            &layout,
            true,
            &NeighborWiring {
                peer: 1,
                out_links: lo_out.clone(),
                in_links: lo_in,
            },
        );
        let mut t_hi = ShmTransport::new(
            seg_hi,
            &layout,
            false,
            &NeighborWiring {
                peer: 0,
                out_links: hi_out,
                in_links: hi_in.clone(),
            },
        );

        let store_lo = Arc::new(PayloadStore::new());
        let store_hi = Arc::new(PayloadStore::new());
        let ep_lo = PayloadEndpoint::remote(Arc::clone(&store_lo));
        let ep_hi = PayloadEndpoint::remote(Arc::clone(&store_hi));

        let packet = Packet::new(
            PacketId::new(9),
            FlowId::new(2),
            NodeId::new(0),
            NodeId::new(1),
            1,
            7,
        )
        .with_payload(Payload::from_words(&[1, 2, 3, 4, 5]));
        store_lo.deposit(packet.clone());
        let mut tail = flit(0);
        tail.packet = PacketId::new(9);
        tail.kind = FlitKind::HeadTail;
        assert!(lo_out[0].push(tail));
        t_lo.pump(8, &ep_lo, true).unwrap();
        assert!(store_lo.is_empty(), "claimed on crossing");
        t_hi.ingest(&ep_hi);
        assert_eq!(hi_in[0].in_flight(), 1);
        assert_eq!(ep_hi.claim(PacketId::new(9)), Some(packet));
    }
}
