//! Fault tolerance of the distributed backend: a run that loses a worker to
//! SIGKILL mid-flight must recover from the last committed checkpoint set
//! and finish with `NetworkStats` bit-identical to an uninterrupted run —
//! and, when recovery is disallowed, abort cleanly with a diagnosable error
//! and no leaked worker processes.
//!
//! Crash injection uses the `HORNET_DIST_CRASH_TOKEN` environment variable:
//! the path of a file containing `"<shard> <cycle>"`. The named shard kills
//! itself (SIGKILL, no unwinding, no Drop) at its first checkpoint at or
//! after that cycle — *before* shipping it, so the coordinator can only
//! roll back to an earlier committed cycle. Claiming the token deletes the
//! file, which is what makes the respawned worker run through cleanly.

#![cfg(unix)]

use hornet_dist::spec::{DistSpec, DistSync, RunKind};
use hornet_dist::{run_distributed, HostOptions, TransportKind};
use hornet_net::stats::NetworkStats;
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use std::path::PathBuf;
use std::time::Duration;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_hornet-dist"))
}

fn assert_bit_identical(seq: &NetworkStats, dist: &NetworkStats, what: &str) {
    assert_eq!(
        dist.delivered_packets, seq.delivered_packets,
        "{what}: packet count"
    );
    assert_eq!(dist.injected_flits, seq.injected_flits, "{what}: injected");
    assert_eq!(
        dist.total_packet_latency, seq.total_packet_latency,
        "{what}: latency total"
    );
    assert_eq!(dist.total_hops, seq.total_hops, "{what}: hops");
    assert_eq!(
        dist.latency_histogram, seq.latency_histogram,
        "{what}: latency histogram"
    );
}

/// Counts live processes whose command line carries `needle` — used to
/// prove the coordinator leaks no workers (each run's workers are tagged by
/// its unique `--nonce`).
fn live_processes_mentioning(needle: &str) -> usize {
    let mut hits = 0;
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path().join("cmdline");
        if let Ok(cmdline) = std::fs::read(&path) {
            let text = String::from_utf8_lossy(&cmdline).replace('\0', " ");
            if text.contains(needle) {
                hits += 1;
            }
        }
    }
    hits
}

/// The acceptance test. One `#[test]` on purpose: both halves set the
/// process-wide crash-token environment variable, so they must not run on
/// concurrent test threads.
#[test]
fn sigkill_recovery_is_bit_identical_and_unrecoverable_loss_aborts_cleanly() {
    let scratch = std::env::temp_dir().join(format!("hornet-crash-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("crash-token scratch dir");
    let token = scratch.join("token");
    std::env::set_var("HORNET_DIST_CRASH_TOKEN", &token);

    let spec = DistSpec {
        width: 8,
        height: 8,
        pattern: SyntheticPattern::Transpose,
        process: InjectionProcess::Bernoulli { rate: 0.06 },
        packet_len: 4,
        seed: 13,
        sync: DistSync::CycleAccurate,
        run: RunKind::Cycles(800),
        checkpoint_every: Some(100),
        ..DistSpec::default()
    };
    let (seq, _, _) = spec.run_sequential().expect("sequential reference");
    assert!(seq.delivered_packets > 0, "workload must deliver traffic");

    // --- Half 1: lose worker 2 at its cycle-300 checkpoint; recover. ---
    std::fs::write(&token, "2 300").expect("write crash token");
    let nonce = 0xFA17_0000 + u64::from(std::process::id());
    let outcome = run_distributed(
        &spec,
        &HostOptions {
            workers: 4,
            transport: TransportKind::UnixSocket,
            worker_cmd: Some(worker_bin()),
            nonce: Some(nonce),
            // Plenty of headroom for slow CI machines: liveness must come
            // from death detection here, not timeout tuning.
            heartbeat_timeout: Duration::from_secs(60),
            ..HostOptions::default()
        },
    )
    .expect("run must survive the SIGKILL and recover");
    assert!(
        outcome.restarts >= 1,
        "the injected crash must have forced at least one restart"
    );
    assert!(
        !token.exists(),
        "the dying worker must have claimed the crash token"
    );
    assert_eq!(outcome.final_cycle, 800);
    assert_bit_identical(&seq, &outcome.stats, "post-recovery 4-process unix");
    assert_eq!(
        live_processes_mentioning(&nonce.to_string()),
        0,
        "recovered run must leave no worker processes behind"
    );

    // --- Half 2: same crash, but recovery disallowed — clean abort. ---
    std::fs::write(&token, "1 200").expect("write crash token");
    let nonce2 = 0xFA17_1000 + u64::from(std::process::id());
    let err = run_distributed(
        &spec,
        &HostOptions {
            workers: 4,
            transport: TransportKind::UnixSocket,
            worker_cmd: Some(worker_bin()),
            nonce: Some(nonce2),
            heartbeat_timeout: Duration::from_secs(60),
            max_restarts: 0,
            ..HostOptions::default()
        },
    )
    .expect_err("with max_restarts=0 the lost worker must abort the run");
    assert_eq!(
        err.kind(),
        std::io::ErrorKind::ConnectionAborted,
        "worker loss surfaces as a recoverable-loss error: {err}"
    );
    assert!(
        err.to_string().contains("shard"),
        "the error must name the lost shard: {err}"
    );
    assert_eq!(
        live_processes_mentioning(&nonce2.to_string()),
        0,
        "aborted run must leave no worker processes behind"
    );

    std::env::remove_var("HORNET_DIST_CRASH_TOKEN");
    let _ = std::fs::remove_dir_all(&scratch);
}
