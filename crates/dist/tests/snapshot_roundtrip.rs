//! Checkpoint/restore determinism: snapshotting a run at an arbitrary cycle,
//! restoring the snapshot into a freshly built engine and running to the end
//! must be bit-identical to never having snapshotted at all — the property
//! the fault-tolerant distributed supervisor leans on when it rolls a run
//! back to the last committed checkpoint.
//!
//! Covered here:
//! * sequential roundtrips across all three workload families (synthetic
//!   traffic, the memory-hierarchy vector sum, the CPU token ring),
//!   property-tested over seeds and snapshot cycles;
//! * snapshot stability: re-serializing a restored engine reproduces the
//!   original byte string exactly (what lets the coordinator compare and
//!   commit checkpoints by content);
//! * the mixed path: snapshot a *sequential* run mid-flight, restore, and
//!   finish the run on the sharded thread runtime (strict CycleAccurate) —
//!   still bit-identical.

use hornet_dist::spec::{DistSpec, DistSync, DistWorkload, RunKind};
use hornet_net::stats::NetworkStats;
use hornet_shard::driver::merge_tile_stats;
use hornet_shard::{Partitioner, RunParams, ShardRuntime};
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use proptest::prelude::*;

fn synthetic_spec(seed: u64, cycles: u64) -> DistSpec {
    DistSpec {
        width: 6,
        height: 6,
        pattern: SyntheticPattern::Transpose,
        process: InjectionProcess::Bernoulli { rate: 0.08 },
        packet_len: 4,
        seed,
        sync: DistSync::CycleAccurate,
        run: RunKind::Cycles(cycles),
        ..DistSpec::default()
    }
}

/// Runs `spec` uninterrupted, and again with a snapshot/restore cut at
/// `cut` cycles; asserts the two final `NetworkStats` are identical and
/// returns them. `total` must match the spec's cycle budget.
fn roundtrip(spec: &DistSpec, total: u64, cut: u64) -> NetworkStats {
    let mut whole = spec.build_network().expect("valid spec");
    whole.run(total);

    let mut first = spec.build_network().expect("valid spec");
    first.run(cut);
    let snap = first.snapshot();

    let mut resumed = spec.build_network().expect("valid spec");
    resumed.restore(&snap).expect("snapshot restores");
    assert_eq!(
        resumed.cycle(),
        cut,
        "restore resumes at the snapshot cycle"
    );
    // Stability: a restored engine re-serializes to the identical bytes.
    assert_eq!(
        resumed.snapshot(),
        snap,
        "snapshot of a restored engine must reproduce the original bytes"
    );
    resumed.run(total - cut);

    assert_eq!(whole.cycle(), resumed.cycle(), "final cycle");
    assert_eq!(
        whole.stats(),
        resumed.stats(),
        "stats after restore+resume must be bit-identical to uninterrupted"
    );
    whole.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Synthetic traffic: snapshot at a random cycle, restore, run on —
    /// bit-identical across seeds and cut points.
    #[test]
    fn synthetic_roundtrip_is_bit_identical(seed in 1u64..500, cut in 1u64..799) {
        let total = 800;
        let stats = roundtrip(&synthetic_spec(seed, total), total, cut);
        prop_assert!(stats.injected_flits > 0, "workload must offer traffic");
    }
}

/// Memory hierarchy (caches, directories, in-flight coherence transactions):
/// cut the vector-sum workload mid-run at several points, including very
/// early (cold caches) and late (drained network).
#[test]
fn mem_vector_sum_roundtrip_is_bit_identical() {
    let spec = DistSpec {
        width: 4,
        height: 4,
        seed: 7,
        workload: DistWorkload::MemVectorSum {
            base_stride: 0x1_0000,
            count: 6,
        },
        run: RunKind::Cycles(4_000),
        ..synthetic_spec(7, 4_000)
    };
    for cut in [1, 37, 500, 2_000, 3_999] {
        let stats = roundtrip(&spec, 4_000, cut);
        assert!(stats.delivered_packets > 0, "vsum must exchange messages");
    }
}

/// CPU cores (register file, PC, user mailboxes): the token ring passes a
/// word through every core; a cut must not drop or duplicate the token.
#[test]
fn cpu_token_ring_roundtrip_is_bit_identical() {
    let spec = DistSpec {
        width: 4,
        height: 4,
        seed: 11,
        workload: DistWorkload::CpuTokenRing,
        run: RunKind::Cycles(6_000),
        ..synthetic_spec(11, 6_000)
    };
    for cut in [25, 1_000, 3_333] {
        roundtrip(&spec, 6_000, cut);
    }
}

/// To-completion semantics survive a cut: resuming a restored engine with
/// `run_to_completion` finishes at the same cycle with the same stats.
#[test]
fn to_completion_roundtrip_matches_cycle_and_stats() {
    let spec = DistSpec {
        width: 4,
        height: 4,
        seed: 3,
        max_packets: Some(20),
        run: RunKind::ToCompletion { max: 200_000 },
        ..synthetic_spec(3, 0)
    };
    let mut whole = spec.build_network().unwrap();
    let whole_done = whole.run_to_completion(200_000);

    let mut first = spec.build_network().unwrap();
    first.run(100);
    let snap = first.snapshot();
    let mut resumed = spec.build_network().unwrap();
    resumed.restore(&snap).unwrap();
    let resumed_done = resumed.run_to_completion(200_000);

    assert_eq!(whole_done, resumed_done, "completion verdict");
    assert_eq!(whole.cycle(), resumed.cycle(), "completion cycle");
    assert_eq!(whole.stats(), resumed.stats(), "completion stats");
}

/// The cross-backend roundtrip the supervisor actually performs: state
/// captured on one engine resumes on another. Snapshot a sequential run at
/// cycle C, restore, then *finish the run on the sharded thread runtime*
/// (strict CycleAccurate, 3 shards) — stats must equal the uninterrupted
/// sequential run bit-for-bit.
#[test]
fn sharded_resume_from_sequential_snapshot_is_bit_identical() {
    for (seed, cut) in [(21u64, 150u64), (22, 613), (23, 1)] {
        let total = 1_000;
        let spec = synthetic_spec(seed, total);
        let mut whole = spec.build_network().unwrap();
        whole.run(total);

        let mut first = spec.build_network().unwrap();
        first.run(cut);
        let snap = first.snapshot();

        let mut resumed = spec.build_network().unwrap();
        resumed.restore(&snap).unwrap();
        let (nodes, _payloads) = resumed.into_nodes();
        let partition = Partitioner::new(3).mesh(spec.width as usize, spec.height as usize);
        let mut runtime = ShardRuntime::new(partition.shard_count());
        let outcome = runtime.run(
            nodes,
            &partition,
            RunParams {
                start: cut,
                cycles: total - cut,
                slack: 0,
                quantum: 1,
                strict: true,
                barrier_batches: false,
                fast_forward: false,
                detect_completion: false,
                profile: false,
                telemetry_every: None,
                trace_runtime: 0,
                live: None,
                kernel: hornet_net::kernel::KernelMode::Auto,
            },
        );
        assert_eq!(outcome.final_cycle, total, "seed {seed} cut {cut}: cycle");
        assert_eq!(
            merge_tile_stats(&outcome.nodes),
            whole.stats(),
            "seed {seed} cut {cut}: sharded resume must match sequential"
        );
    }
}
