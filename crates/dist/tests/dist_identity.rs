//! End-to-end fidelity tests of the distributed backend.
//!
//! The headline claims, asserted here exactly as the paper's reproduction
//! demands:
//!
//! * a **4-process** CycleAccurate run over the Unix-socket transport on a
//!   16×16 mesh reports the *identical* packet count, latency totals and
//!   log₂ latency histogram as sequential simulation of the same spec —
//!   under both uniform-random and transpose traffic;
//! * the same holds for the shared-memory transport and the in-process
//!   transport (the thread-backed reference of the `BoundaryTransport`
//!   trait);
//! * a distributed `ToCompletion` run stops early via coordinator-side
//!   credit-counting termination — no barrier anywhere — and still delivers
//!   every offered packet.

use hornet_dist::spec::{DistSpec, DistSync, RunKind};
use hornet_dist::{run_distributed, run_threaded, HostOptions, TransportKind};
use hornet_net::stats::NetworkStats;
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use std::path::PathBuf;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_hornet-dist"))
}

fn spec_16x16(pattern: SyntheticPattern, seed: u64, cycles: u64) -> DistSpec {
    DistSpec {
        width: 16,
        height: 16,
        pattern,
        process: InjectionProcess::Bernoulli { rate: 0.05 },
        packet_len: 4,
        seed,
        sync: DistSync::CycleAccurate,
        run: RunKind::Cycles(cycles),
        ..DistSpec::default()
    }
}

fn assert_bit_identical(seq: &NetworkStats, dist: &NetworkStats, what: &str) {
    assert_eq!(
        dist.delivered_packets, seq.delivered_packets,
        "{what}: packet count"
    );
    assert_eq!(dist.delivered_flits, seq.delivered_flits, "{what}: flits");
    assert_eq!(
        dist.injected_flits, seq.injected_flits,
        "{what}: injected flits"
    );
    assert_eq!(
        dist.total_packet_latency, seq.total_packet_latency,
        "{what}: latency total"
    );
    assert_eq!(dist.total_hops, seq.total_hops, "{what}: hops");
    assert_eq!(
        dist.latency_histogram, seq.latency_histogram,
        "{what}: latency histogram"
    );
    assert_eq!(dist.busy_cycles, seq.busy_cycles, "{what}: busy cycles");
}

/// The acceptance test: 4 worker processes over Unix sockets, CycleAccurate,
/// 16×16 mesh, uniform + transpose — bit-identical to sequential.
#[cfg(unix)]
#[test]
fn four_process_unix_socket_cycle_accurate_is_bit_identical() {
    for (pattern, seed) in [
        (SyntheticPattern::UniformRandom, 11u64),
        (SyntheticPattern::Transpose, 23u64),
    ] {
        let spec = spec_16x16(pattern.clone(), seed, 1_500);
        let (seq, _, _) = spec.run_sequential().expect("sequential reference");
        assert!(seq.delivered_packets > 0, "workload must deliver traffic");
        let outcome = run_distributed(
            &spec,
            &HostOptions {
                workers: 4,
                transport: TransportKind::UnixSocket,
                worker_cmd: Some(worker_bin()),
                ..HostOptions::default()
            },
        )
        .expect("distributed run");
        assert_eq!(outcome.shards, 4);
        assert_eq!(outcome.final_cycle, 1_500);
        assert_bit_identical(
            &seq,
            &outcome.stats,
            &format!("4-process unix {}", pattern.label()),
        );
        // Per-shard stats re-merge to the total.
        let mut merged = NetworkStats::new();
        for s in &outcome.per_shard {
            merged.merge(s);
        }
        assert_eq!(merged.delivered_packets, outcome.stats.delivered_packets);
    }
}

/// Two processes over a shared-memory segment, bit-identical to sequential.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[test]
fn two_process_shm_cycle_accurate_is_bit_identical() {
    let spec = DistSpec {
        width: 8,
        height: 8,
        seed: 5,
        run: RunKind::Cycles(1_200),
        ..spec_16x16(SyntheticPattern::Transpose, 5, 1_200)
    };
    let (seq, _, _) = spec.run_sequential().unwrap();
    let outcome = run_distributed(
        &spec,
        &HostOptions {
            workers: 2,
            transport: TransportKind::Shm,
            worker_cmd: Some(worker_bin()),
            ..HostOptions::default()
        },
    )
    .expect("shm run");
    assert_bit_identical(&seq, &outcome.stats, "2-process shm");
}

/// Two processes over TCP loopback (the cross-machine transport).
#[test]
fn two_process_tcp_cycle_accurate_is_bit_identical() {
    let spec = DistSpec {
        width: 8,
        height: 8,
        seed: 9,
        run: RunKind::Cycles(1_000),
        ..spec_16x16(SyntheticPattern::UniformRandom, 9, 1_000)
    };
    let (seq, _, _) = spec.run_sequential().unwrap();
    let outcome = run_distributed(
        &spec,
        &HostOptions {
            workers: 2,
            transport: TransportKind::Tcp,
            worker_cmd: Some(worker_bin()),
            ..HostOptions::default()
        },
    )
    .expect("tcp run");
    assert_bit_identical(&seq, &outcome.stats, "2-process tcp");
}

/// The in-process implementation of the transport trait (shared SPSC rings)
/// through the same worker loop: bit-identical, and Slack preserves
/// functional totals.
#[test]
fn threaded_transport_reference_is_bit_identical_and_slack_is_functional() {
    let spec = spec_16x16(SyntheticPattern::Transpose, 41, 2_000);
    let (seq, _, _) = spec.run_sequential().unwrap();
    let ca = run_threaded(&spec, 4).expect("threaded run");
    assert_bit_identical(&seq, &ca.stats, "threaded in-proc transport");

    let slack = run_threaded(
        &DistSpec {
            sync: DistSync::Slack(5),
            max_packets: Some(40),
            run: RunKind::ToCompletion { max: 200_000 },
            ..spec.clone()
        },
        4,
    )
    .expect("slack run");
    assert!(slack.completed, "slack run must complete");
    // Functional exactness: every offered packet delivered exactly once.
    assert_eq!(slack.stats.delivered_packets, 256 * 40);
    assert_eq!(slack.stats.routing_failures, 0);
}

/// Checkpointing alone (no crash) must not perturb the simulation: the
/// run's stats stay bit-identical to sequential, with zero restarts.
#[cfg(unix)]
#[test]
fn checkpointing_without_a_crash_is_free_of_side_effects() {
    let spec = DistSpec {
        width: 6,
        height: 6,
        seed: 29,
        run: RunKind::Cycles(600),
        checkpoint_every: Some(50),
        ..spec_16x16(SyntheticPattern::UniformRandom, 29, 600)
    };
    let (seq, _, _) = spec.run_sequential().unwrap();
    let outcome = run_distributed(
        &spec,
        &HostOptions {
            workers: 2,
            transport: TransportKind::UnixSocket,
            worker_cmd: Some(worker_bin()),
            ..HostOptions::default()
        },
    )
    .expect("checkpointed run");
    assert_eq!(outcome.restarts, 0);
    assert_bit_identical(&seq, &outcome.stats, "checkpointed 2-process unix");
}

/// Distributed completion detection: 4 processes, bounded workload, credit
/// counting stops the run long before the cycle cap.
#[cfg(unix)]
#[test]
fn four_process_completion_detection_stops_early_and_delivers_everything() {
    let spec = DistSpec {
        max_packets: Some(30),
        run: RunKind::ToCompletion { max: 400_000 },
        ..spec_16x16(SyntheticPattern::Transpose, 3, 0)
    };
    let (seq, seq_cycle, seq_completed) = spec.run_sequential().unwrap();
    assert!(seq_completed);
    let outcome = run_distributed(
        &spec,
        &HostOptions {
            workers: 4,
            transport: TransportKind::UnixSocket,
            worker_cmd: Some(worker_bin()),
            ..HostOptions::default()
        },
    )
    .expect("completion run");
    assert!(outcome.completed, "credit termination must declare");
    assert!(
        outcome.final_cycle < 400_000,
        "must stop well before the cap (stopped at {})",
        outcome.final_cycle
    );
    // 256 nodes × 30 packets each, delivered exactly once — and identical to
    // the sequential run's delivery set (CycleAccurate).
    assert_eq!(outcome.stats.delivered_packets, 256 * 30);
    assert_eq!(outcome.stats.delivered_packets, seq.delivered_packets);
    assert_eq!(outcome.stats.total_packet_latency, seq.total_packet_latency);
    // The distributed run may overshoot the sequential stop cycle by the
    // detection latency, but not wildly.
    assert!(
        outcome.final_cycle >= seq_cycle.saturating_sub(1),
        "distributed stop {} vs sequential {}",
        outcome.final_cycle,
        seq_cycle
    );
}
