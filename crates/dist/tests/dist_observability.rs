//! Observability across process boundaries: a 4-process CycleAccurate run
//! with event tracing and telemetry enabled must stay bit-identical to the
//! sequential reference — in its `NetworkStats` *and* in its canonicalized
//! flit-lifecycle trace — while the coordinator streams schema-valid NDJSON
//! metrics and collects one stall profile per shard. The in-process threaded
//! transport is held to the same bar.

use hornet_dist::spec::{DistSpec, DistSync, RunKind};
use hornet_dist::{run_distributed, run_threaded, HostOptions, TransportKind};
use hornet_obs::metrics::TelemetrySample;
use hornet_obs::trace::TraceDump;
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use std::path::PathBuf;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_hornet-dist"))
}

fn observed_spec() -> DistSpec {
    DistSpec {
        width: 8,
        height: 8,
        pattern: SyntheticPattern::Transpose,
        process: InjectionProcess::Bernoulli { rate: 0.05 },
        packet_len: 4,
        seed: 31,
        sync: DistSync::CycleAccurate,
        run: RunKind::Cycles(1_200),
        telemetry_every: Some(200),
        trace_capacity: Some(1 << 15),
        ..DistSpec::default()
    }
}

/// Sequential reference with tracing on: stats plus canonical flit trace.
fn sequential_reference(
    spec: &DistSpec,
    cycles: u64,
) -> (hornet_net::stats::NetworkStats, TraceDump) {
    let mut net = spec.build_network().expect("valid spec");
    net.enable_tracing(spec.trace_capacity.unwrap() as usize);
    net.run(cycles);
    let dump = net.drain_trace();
    assert_eq!(dump.dropped, 0, "reference ring must not truncate");
    (net.stats(), dump.flit_events())
}

/// The acceptance test: 4 worker processes over Unix sockets with tracing
/// and telemetry enabled — stats and flit trace bit-identical to sequential,
/// metrics stream schema-valid.
#[cfg(unix)]
#[test]
fn four_process_traced_run_is_bit_identical_and_streams_valid_metrics() {
    let spec = observed_spec();
    let (seq_stats, seq_trace) = sequential_reference(&spec, 1_200);
    assert!(
        !seq_trace.events.is_empty(),
        "reference records flit events"
    );

    let metrics_path =
        std::env::temp_dir().join(format!("hornet-dist-metrics-{}.ndjson", std::process::id()));
    let outcome = run_distributed(
        &spec,
        &HostOptions {
            workers: 4,
            transport: TransportKind::UnixSocket,
            worker_cmd: Some(worker_bin()),
            metrics_out: Some(metrics_path.clone()),
            ..HostOptions::default()
        },
    )
    .expect("distributed run");

    assert_eq!(outcome.shards, 4);
    assert_eq!(outcome.stats, seq_stats, "stats identical with tracing on");
    assert_eq!(
        outcome.trace.flit_events(),
        seq_trace,
        "canonical flit trace identical across process boundaries"
    );

    // One stall profile per shard, each attributing real wall time (the
    // dist driver always profiles).
    assert_eq!(outcome.per_shard_profiles.len(), 4);
    for (i, p) in outcome.per_shard_profiles.iter().enumerate() {
        assert!(p.total_ns() > 0, "shard {i} attributed no wall time");
    }

    // Telemetry arrived in-band and as the NDJSON stream on disk; every
    // sample line satisfies the schema, the stream closes with the terminal
    // summary record (carrying the merged latency quantiles), and shards
    // progressed to the final cycle.
    assert!(!outcome.samples.is_empty(), "workers shipped samples");
    let text = std::fs::read_to_string(&metrics_path).expect("metrics stream written");
    let _ = std::fs::remove_file(&metrics_path);
    let mut lines = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if line.starts_with("{\"summary\":true") {
            continue;
        }
        TelemetrySample::validate_ndjson_line(line)
            .unwrap_or_else(|e| panic!("bad NDJSON line {line:?}: {e}"));
        lines += 1;
    }
    assert_eq!(lines, outcome.samples.len(), "stream mirrors the samples");
    let last = text.lines().rev().find(|l| !l.trim().is_empty()).unwrap();
    assert!(
        last.starts_with("{\"summary\":true") && last.contains("\"event\":\"end\""),
        "stream must close with the terminal summary: {last:?}"
    );
    assert!(
        last.contains("\"latency_p50\":") && last.contains("\"latency_p99\":"),
        "summary carries merged latency quantiles: {last:?}"
    );
    let max_cycle = outcome.samples.iter().map(|s| s.cycle).max().unwrap_or(0);
    assert!(
        max_cycle >= 1_000,
        "sampling must cover the run (last sample at cycle {max_cycle})"
    );
}

/// The threaded transport reference under the same observability load.
#[test]
fn threaded_traced_run_is_bit_identical_and_samples() {
    let spec = observed_spec();
    let (seq_stats, seq_trace) = sequential_reference(&spec, 1_200);
    let outcome = run_threaded(&spec, 4).expect("threaded run");
    assert_eq!(outcome.stats, seq_stats, "threaded stats identical");
    assert_eq!(
        outcome.trace.flit_events(),
        seq_trace,
        "threaded canonical flit trace identical"
    );
    assert!(!outcome.samples.is_empty(), "threaded workers sample too");
    for s in &outcome.samples {
        TelemetrySample::validate_ndjson_line(&s.to_ndjson()).expect("schema-valid sample");
    }
}
