//! Tests of the unified cycle driver and payload-over-wire transport.
//!
//! PR 4's two claims, asserted end to end:
//!
//! * there is exactly **one** implementation of the per-cycle shard protocol
//!   ([`hornet_shard::driver::CycleDriver`]): the *same* driver runs under
//!   thread-backend hooks (`run_threaded`, in-process transport over shared
//!   SPSC rings) and process-backend hooks (`run_distributed`, socket/shm
//!   transports) and reports identical `NetworkStats`;
//! * packet **payloads** are first-class boundary traffic: a
//!   memory-hierarchy workload (MIPS-like cores over MSI coherence, whose
//!   protocol messages ride in packet payloads) runs under 4 socket-transport
//!   processes bit-identically to sequential simulation — packet count,
//!   latency totals and the log₂ latency histogram — and the same over a
//!   shared-memory segment.

use hornet_dist::spec::{DistSpec, DistSync, DistWorkload, RunKind};
use hornet_dist::{run_distributed, run_threaded, HostOptions, TransportKind};
use hornet_net::stats::NetworkStats;
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use std::path::PathBuf;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_hornet-dist"))
}

fn assert_bit_identical(seq: &NetworkStats, other: &NetworkStats, what: &str) {
    assert_eq!(
        other.delivered_packets, seq.delivered_packets,
        "{what}: packet count"
    );
    assert_eq!(other.delivered_flits, seq.delivered_flits, "{what}: flits");
    assert_eq!(
        other.injected_flits, seq.injected_flits,
        "{what}: injected flits"
    );
    assert_eq!(
        other.total_packet_latency, seq.total_packet_latency,
        "{what}: latency total"
    );
    assert_eq!(other.total_hops, seq.total_hops, "{what}: hops");
    assert_eq!(
        other.latency_histogram, seq.latency_histogram,
        "{what}: latency histogram"
    );
    assert_eq!(other.busy_cycles, seq.busy_cycles, "{what}: busy cycles");
}

/// A memory workload: one MIPS-like core per tile storing and re-loading a
/// vector whose cache lines are interleaved across all tiles, so every miss
/// crosses the network with an MSI protocol payload.
fn mem_spec(sync: DistSync) -> DistSpec {
    DistSpec {
        width: 4,
        height: 4,
        workload: DistWorkload::MemVectorSum {
            base_stride: 0x1_0000,
            count: 4,
        },
        seed: 7,
        sync,
        run: RunKind::ToCompletion { max: 400_000 },
        ..DistSpec::default()
    }
}

/// The same `CycleDriver` under thread-backend hooks (in-process transport)
/// and process-backend hooks (Unix sockets): identical `NetworkStats`, both
/// equal to the sequential reference.
#[cfg(unix)]
#[test]
fn same_cycle_driver_under_thread_and_process_hooks_is_identical() {
    let spec = DistSpec {
        width: 8,
        height: 8,
        pattern: SyntheticPattern::Transpose,
        process: InjectionProcess::Bernoulli { rate: 0.05 },
        packet_len: 4,
        seed: 31,
        sync: DistSync::CycleAccurate,
        run: RunKind::Cycles(1_200),
        ..DistSpec::default()
    };
    let (seq, _, _) = spec.run_sequential().expect("sequential reference");
    assert!(seq.delivered_packets > 0);

    let threaded = run_threaded(&spec, 4).expect("thread-backend hooks");
    assert_bit_identical(&seq, &threaded.stats, "driver under thread hooks");

    let process = run_distributed(
        &spec,
        &HostOptions {
            workers: 4,
            transport: TransportKind::UnixSocket,
            worker_cmd: Some(worker_bin()),
            ..HostOptions::default()
        },
    )
    .expect("process-backend hooks");
    assert_bit_identical(&seq, &process.stats, "driver under process hooks");

    // Thread hooks and process hooks agree with each other, field by field.
    assert_eq!(threaded.stats, process.stats, "hooks must not diverge");
}

/// The payload round-trip acceptance test: a `crates/mem`-driven workload on
/// 4 socket-transport processes is bit-identical (packet count + latency
/// histogram) to sequential — payloads cross the wire with their tail flits.
#[cfg(unix)]
#[test]
fn memory_workload_over_four_socket_processes_is_bit_identical() {
    let spec = mem_spec(DistSync::CycleAccurate);
    let (seq, seq_cycle, seq_completed) = spec.run_sequential().expect("sequential reference");
    assert!(seq_completed, "reference must complete");
    assert!(
        seq.delivered_packets > 0,
        "misses must cross the network ({} packets)",
        seq.delivered_packets
    );

    let outcome = run_distributed(
        &spec,
        &HostOptions {
            workers: 4,
            transport: TransportKind::UnixSocket,
            worker_cmd: Some(worker_bin()),
            ..HostOptions::default()
        },
    )
    .expect("4-process memory workload");
    assert!(outcome.completed, "cores must halt and drain");
    assert_bit_identical(&seq, &outcome.stats, "mem workload, 4-process unix");
    assert!(
        outcome.final_cycle >= seq_cycle.saturating_sub(1),
        "distributed stop {} vs sequential {}",
        outcome.final_cycle,
        seq_cycle
    );
}

/// The same memory workload over a shared-memory segment: payload records
/// travel the segment's byte rings.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[test]
fn memory_workload_over_shm_is_bit_identical() {
    let spec = mem_spec(DistSync::CycleAccurate);
    let (seq, _, seq_completed) = spec.run_sequential().expect("sequential reference");
    assert!(seq_completed);

    let outcome = run_distributed(
        &spec,
        &HostOptions {
            workers: 4,
            transport: TransportKind::Shm,
            worker_cmd: Some(worker_bin()),
            ..HostOptions::default()
        },
    )
    .expect("4-process shm memory workload");
    assert!(outcome.completed);
    assert_bit_identical(&seq, &outcome.stats, "mem workload, 4-process shm");
}

/// A CPU workload (user-level MPI-style payloads) under the thread-backend
/// hooks of the same driver: the token makes it around the ring, which is
/// only possible if payloads reach the right cores.
#[test]
fn cpu_token_ring_completes_under_threaded_driver() {
    let spec = DistSpec {
        width: 4,
        height: 4,
        workload: DistWorkload::CpuTokenRing,
        seed: 3,
        sync: DistSync::CycleAccurate,
        run: RunKind::ToCompletion { max: 400_000 },
        ..DistSpec::default()
    };
    let (seq, _, seq_completed) = spec.run_sequential().unwrap();
    assert!(seq_completed);
    // One user packet per hop around the ring.
    assert_eq!(seq.delivered_packets, 16);

    let outcome = run_threaded(&spec, 4).expect("threaded token ring");
    assert!(outcome.completed, "token must circulate to completion");
    assert_bit_identical(&seq, &outcome.stats, "token ring, thread hooks");
}

/// Regression test: Periodic(n) + fast-forward over batched sockets. Skip
/// directives land the clocks on cycles unaligned to the batch quantum; the
/// socket flush cadence must follow the *rolling* window (cycles since last
/// flush), or the post-jump batch boundaries outrun the flushed progress
/// and every shard waits forever on buffered frames.
#[cfg(unix)]
#[test]
fn periodic_fast_forward_over_batched_sockets_completes() {
    let spec = DistSpec {
        width: 8,
        height: 8,
        pattern: SyntheticPattern::Transpose,
        process: InjectionProcess::Periodic {
            period: 301,
            offset: 7,
        },
        packet_len: 4,
        max_packets: Some(5),
        seed: 19,
        sync: DistSync::Periodic(3),
        run: RunKind::ToCompletion { max: 100_000 },
        fast_forward: true,
        ..DistSpec::default()
    };
    assert_eq!(spec.socket_batch(), 3, "periodic 3 must batch 3 cycles");
    let outcome = run_distributed(
        &spec,
        &HostOptions {
            workers: 4,
            transport: TransportKind::UnixSocket,
            worker_cmd: Some(worker_bin()),
            ..HostOptions::default()
        },
    )
    .expect("periodic fast-forward run");
    assert!(outcome.completed, "run must complete, not wedge");
    assert_eq!(outcome.stats.delivered_packets, 64 * 5);
    assert!(
        outcome.stats.fast_forwarded_cycles > 0,
        "idle gaps must actually be skipped"
    );
}

/// Host-list mode: pre-started workers connect to the coordinator's TCP
/// control plane, advertise their data-plane addresses, and the run is
/// bit-identical to sequential — the cross-machine path, on loopback.
#[test]
fn host_list_mode_with_prestarted_workers_is_bit_identical() {
    use std::net::TcpListener;
    use std::process::{Command, Stdio};

    // Reserve three loopback ports (control + two data planes), then free
    // them for the actual sockets. The window is tiny and the test retries
    // nothing — a collision would only surface as a bind error.
    let ports: Vec<u16> = (0..3)
        .map(|_| {
            TcpListener::bind("127.0.0.1:0")
                .unwrap()
                .local_addr()
                .unwrap()
                .port()
        })
        .collect();
    let ctrl = format!("127.0.0.1:{}", ports[0]);
    let hosts: Vec<String> = ports[1..]
        .iter()
        .map(|p| format!("127.0.0.1:{p}"))
        .collect();

    let spec = DistSpec {
        width: 4,
        height: 4,
        pattern: SyntheticPattern::Transpose,
        process: InjectionProcess::Bernoulli { rate: 0.05 },
        packet_len: 4,
        seed: 17,
        sync: DistSync::CycleAccurate,
        run: RunKind::Cycles(600),
        ..DistSpec::default()
    };
    let (seq, _, _) = spec.run_sequential().unwrap();

    // Start the two "remote" workers; they retry the control connection
    // until the coordinator is listening (spawned first, so give them the
    // address up front — connect() failing fast means they must be launched
    // after the listener, which run_distributed sets up before accepting).
    let host_thread = {
        let spec = spec.clone();
        let hosts = hosts.clone();
        let ctrl = ctrl.clone();
        std::thread::spawn(move || {
            run_distributed(
                &spec,
                &HostOptions {
                    transport: TransportKind::Tcp,
                    worker_hosts: Some(hosts),
                    ctrl_listen: Some(ctrl),
                    // Pre-started workers must present the same join nonce
                    // the coordinator expects (satellite: stray-worker guard).
                    nonce: Some(777),
                    ..HostOptions::default()
                },
            )
        })
    };
    // Give the coordinator a moment to bind, then launch the workers.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let children: Vec<_> = hosts
        .iter()
        .map(|advertise| {
            Command::new(worker_bin())
                .args([
                    "worker",
                    "--connect",
                    &ctrl,
                    "--family",
                    "tcp",
                    "--advertise",
                    advertise,
                    "--nonce",
                    "777",
                ])
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn host-list worker")
        })
        .collect();

    let outcome = host_thread
        .join()
        .expect("host thread")
        .expect("host-list run");
    for mut child in children {
        let _ = child.wait();
    }
    assert_eq!(outcome.shards, 2);
    assert_bit_identical(&seq, &outcome.stats, "host-list tcp loopback");
}

/// Socket-transport batching: a Slack(4) run coalesces up to 4 cycles per
/// socket flush; functional totals stay exact (every offered packet is
/// delivered exactly once).
#[cfg(unix)]
#[test]
fn slack_run_with_batched_socket_flushes_delivers_everything() {
    let spec = DistSpec {
        width: 8,
        height: 8,
        pattern: SyntheticPattern::Transpose,
        process: InjectionProcess::Bernoulli { rate: 0.05 },
        packet_len: 4,
        max_packets: Some(30),
        seed: 13,
        sync: DistSync::Slack(4),
        run: RunKind::ToCompletion { max: 200_000 },
        ..DistSpec::default()
    };
    assert_eq!(spec.socket_batch(), 4, "slack 4 must batch 4 cycles");
    let outcome = run_distributed(
        &spec,
        &HostOptions {
            workers: 4,
            transport: TransportKind::UnixSocket,
            worker_cmd: Some(worker_bin()),
            ..HostOptions::default()
        },
    )
    .expect("batched slack run");
    assert!(outcome.completed, "slack run must complete");
    assert_eq!(outcome.stats.delivered_packets, 64 * 30);
    assert_eq!(outcome.stats.routing_failures, 0);
}
