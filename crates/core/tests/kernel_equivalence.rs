//! Kernel-vs-interpreter equivalence: the compiled SoA cycle kernel
//! ([`hornet_net::kernel::MeshKernel`]) must be *bit-identical* to the
//! per-router interpreter — not just in aggregate statistics but in the
//! canonical flit-lifecycle trace (every inject, route decision and eject,
//! cycle-stamped per tile).
//!
//! Covered here:
//! * property-tested equivalence over random mesh sizes, injection rates,
//!   seeds, thread counts and (bit-exact) synchronization modes;
//! * loose synchronization: same functional outcome (every offered packet
//!   delivered once, same hop counts) with either execution path;
//! * mid-run snapshot/restore: a kernel run cut at an arbitrary cycle and
//!   resumed must still match an uninterrupted interpreter run;
//! * fallback: configurations the kernel cannot specialize (adaptive
//!   routing, bidirectional links) silently select the interpreter, even
//!   under [`KernelMode::Force`], and still produce identical results.
//!
//! All comparisons pin the mode programmatically ([`KernelMode::Force`] /
//! [`KernelMode::Off`]), which is immune to the `HORNET_KERNEL` environment
//! override (that only applies to [`KernelMode::Auto`]).

use hornet_core::engine::{EngineConfig, ParallelEngine, SyncMode};
use hornet_net::config::NetworkConfig;
use hornet_net::geometry::Geometry;
use hornet_net::kernel::KernelMode;
use hornet_net::network::Network;
use hornet_net::routing::RoutingKind;
use hornet_net::stats::NetworkStats;
use hornet_net::vca::VcAllocKind;
use hornet_obs::trace::TraceDump;
use hornet_traffic::injector::{flows_for_pattern, SyntheticConfig, SyntheticInjector};
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use proptest::prelude::*;
use std::sync::Arc;

/// Ring capacity large enough that no test run drops trace events (a drop
/// would silently shrink the compared set).
const TRACE_CAPACITY: usize = 1 << 15;

struct Case {
    width: usize,
    height: usize,
    routing: RoutingKind,
    bidirectional: bool,
    seed: u64,
    rate: f64,
    max_packets: Option<u64>,
}

impl Case {
    fn mesh(width: usize, height: usize, seed: u64, rate: f64) -> Self {
        Self {
            width,
            height,
            routing: RoutingKind::Xy,
            bidirectional: false,
            seed,
            rate,
            max_packets: None,
        }
    }

    fn network(&self) -> Network {
        let geometry = Arc::new(Geometry::mesh2d(self.width, self.height));
        let pattern = SyntheticPattern::Transpose;
        let flows = flows_for_pattern(&pattern, &geometry);
        let cfg = NetworkConfig::new((*geometry).clone())
            .with_routing(self.routing)
            .with_vca(VcAllocKind::Dynamic)
            .with_bidirectional_links(self.bidirectional)
            .with_flows(flows);
        let mut network = Network::new(&cfg, self.seed).expect("valid config");
        for node in geometry.nodes() {
            network.attach_agent(
                node,
                Box::new(SyntheticInjector::new(
                    Arc::clone(&geometry),
                    SyntheticConfig {
                        pattern: pattern.clone(),
                        process: InjectionProcess::Bernoulli { rate: self.rate },
                        packet_len: 4,
                        stop_after: None,
                        max_packets: self.max_packets,
                    },
                )),
            );
        }
        network
    }

    fn engine(&self, threads: usize, sync: SyncMode, kernel: KernelMode) -> ParallelEngine {
        let mut engine = ParallelEngine::from_network(
            self.network(),
            EngineConfig {
                threads,
                sync,
                fast_forward: false,
                pin_threads: false,
                kernel,
            },
        );
        engine.enable_tracing(TRACE_CAPACITY);
        engine
    }

    /// Runs `cycles` with the given backend and kernel selection; returns
    /// the stats and the canonical flit trace.
    fn run(
        &self,
        threads: usize,
        sync: SyncMode,
        kernel: KernelMode,
        cycles: u64,
    ) -> (NetworkStats, TraceDump) {
        let mut engine = self.engine(threads, sync, kernel);
        engine.run(cycles);
        let trace = engine.drain_trace().flit_events();
        (engine.stats(), trace)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline property: over random mesh shapes, loads, seeds, thread
    /// counts and bit-exact sync modes, forcing the kernel and forcing the
    /// interpreter produce identical `NetworkStats` *and* identical
    /// canonical flit traces.
    #[test]
    fn kernel_is_bit_identical_to_interpreter(
        width in 2usize..6,
        height in 2usize..6,
        seed in 1u64..10_000,
        rate_pct in 1u32..12,
        threads in 1usize..5,
        sync_sel in 0u8..3,
    ) {
        let sync = match sync_sel {
            0 => SyncMode::CycleAccurate,
            1 => SyncMode::Slack(0),
            _ => SyncMode::Periodic(1),
        };
        let case = Case::mesh(width, height, seed, f64::from(rate_pct) / 100.0);
        let cycles = 1_200;
        let (ks, kt) = case.run(threads, sync, KernelMode::Force, cycles);
        let (is, it) = case.run(threads, sync, KernelMode::Off, cycles);
        prop_assert_eq!(&ks, &is, "stats diverge ({threads} threads, {sync:?})");
        prop_assert_eq!(kt.events.len(), it.events.len(), "trace length diverges");
        prop_assert_eq!(kt.dropped, 0, "trace ring overflowed; grow TRACE_CAPACITY");
        prop_assert_eq!(kt, it, "canonical flit traces diverge");
        // Sanity: the workload actually exercised the network.
        prop_assert!(ks.injected_flits > 0, "case offered no traffic");
    }
}

/// Loose synchronization modes are not cycle-deterministic, so the traces
/// may legitimately differ — but the functional outcome may not: with a
/// bounded offered load run to completion, both execution paths deliver
/// every packet exactly once over identical routes.
#[test]
fn loose_sync_kernel_matches_interpreter_functionally() {
    let mut case = Case::mesh(4, 4, 77, 0.05);
    case.max_packets = Some(40);
    for sync in [SyncMode::Periodic(5), SyncMode::Slack(3)] {
        let mut kernel = case.engine(4, sync, KernelMode::Force);
        let mut interp = case.engine(4, sync, KernelMode::Off);
        assert!(kernel.run_to_completion(200_000), "kernel run must drain");
        assert!(interp.run_to_completion(200_000), "interp run must drain");
        let (k, i) = (kernel.stats(), interp.stats());
        assert_eq!(k.injected_packets, i.injected_packets, "{sync:?}");
        assert_eq!(k.delivered_packets, i.delivered_packets, "{sync:?}");
        assert_eq!(k.delivered_flits, i.delivered_flits, "{sync:?}");
        assert_eq!(k.total_hops, i.total_hops, "{sync:?}");
    }
}

/// A kernel run snapshotted at an arbitrary cycle and resumed (still on the
/// kernel) must match an *uninterrupted interpreter* run bit-for-bit — the
/// kernel keeps no authoritative state, so a snapshot taken between cycles
/// is exactly the interpreter's snapshot.
#[test]
fn kernel_snapshot_roundtrip_matches_uninterrupted_interpreter() {
    let case = Case::mesh(5, 4, 913, 0.06);
    let total = 1_500;
    for cut in [1, 239, 1_499] {
        let mut reference = case.network();
        reference.set_kernel_mode(KernelMode::Off);
        reference.run(total);

        let mut first = case.network();
        first.set_kernel_mode(KernelMode::Force);
        assert!(first.kernel_active(), "eligible config must compile");
        first.run(cut);
        let snap = first.snapshot();

        let mut resumed = case.network();
        resumed.set_kernel_mode(KernelMode::Force);
        resumed.restore(&snap).expect("snapshot restores");
        assert_eq!(resumed.cycle(), cut);
        resumed.run(total - cut);

        assert_eq!(
            resumed.stats(),
            reference.stats(),
            "cut {cut}: kernel snapshot/resume must match uninterrupted interpreter"
        );
    }
}

/// Configurations the kernel cannot specialize fall back to the interpreter
/// even under `Force` — silently, and with identical results.
#[test]
fn exotic_configs_fall_back_to_the_interpreter() {
    let exotic = [
        Case {
            routing: RoutingKind::AdaptiveMinimal,
            ..Case::mesh(4, 4, 31, 0.06)
        },
        Case {
            bidirectional: true,
            ..Case::mesh(4, 4, 32, 0.06)
        },
    ];
    for case in exotic {
        let mut forced = case.network();
        forced.set_kernel_mode(KernelMode::Force);
        assert!(
            !forced.kernel_active(),
            "ineligible config must not compile a kernel"
        );
        forced.run(1_000);

        let mut interp = case.network();
        interp.set_kernel_mode(KernelMode::Off);
        interp.run(1_000);

        assert_eq!(forced.stats(), interp.stats(), "fallback must be exact");
        assert!(forced.stats().injected_flits > 0, "case offered no traffic");
    }
    // And the plain mesh really does compile, so the negative assertions
    // above are meaningful.
    let mut plain = Case::mesh(4, 4, 33, 0.06).network();
    plain.set_kernel_mode(KernelMode::Force);
    assert!(plain.kernel_active(), "plain DOR mesh must compile");
}
