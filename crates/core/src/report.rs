//! Simulation reports: network statistics, per-tile breakdowns, and optional
//! power / thermal traces.

use hornet_net::ids::Cycle;
use hornet_net::stats::NetworkStats;
use hornet_obs::profile::StallProfile;
use hornet_power::energy::PowerSample;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Duration;

/// Power results of a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Average total (dynamic + leakage) power per tile over the measured
    /// window, in watts.
    pub per_tile_avg_w: Vec<f64>,
    /// Chip-wide average network power, in watts.
    pub total_avg_w: f64,
    /// Time series of per-tile power samples: one entry per sample interval.
    pub samples: Vec<(Cycle, Vec<PowerSample>)>,
}

impl PowerReport {
    /// Peak chip-wide power over the sample intervals, in watts.
    pub fn peak_total_w(&self) -> f64 {
        self.samples
            .iter()
            .map(|(_, s)| s.iter().map(PowerSample::total_w).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

/// Thermal results of a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ThermalReport {
    /// Per-interval (cycle, per-tile temperature) trace, in °C.
    pub time_series: Vec<(Cycle, Vec<f64>)>,
    /// Final (end-of-run) per-tile temperatures, in °C.
    pub final_temperatures: Vec<f64>,
    /// Index of the hottest tile at the end of the run.
    pub hotspot_tile: usize,
}

impl ThermalReport {
    /// Maximum temperature observed anywhere over the whole run.
    pub fn peak_temp(&self) -> f64 {
        self.time_series
            .iter()
            .flat_map(|(_, t)| t.iter().copied())
            .fold(f64::MIN, f64::max)
    }

    /// Mean final temperature.
    pub fn mean_final_temp(&self) -> f64 {
        if self.final_temperatures.is_empty() {
            return 0.0;
        }
        self.final_temperatures.iter().sum::<f64>() / self.final_temperatures.len() as f64
    }

    /// The per-tile temperature trace of one tile.
    pub fn tile_trace(&self, tile: usize) -> Vec<(Cycle, f64)> {
        self.time_series
            .iter()
            .map(|(c, t)| (*c, t[tile]))
            .collect()
    }
}

/// Shard layout of a parallel run: how the tiles were partitioned and how
/// much of the topology the partition cut.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardSummary {
    /// Number of shards (worker threads actually used).
    pub shards: usize,
    /// Tiles per shard, in shard order.
    pub tiles_per_shard: Vec<usize>,
    /// Physical links cut by the partition (each carried by lock-free
    /// boundary mailboxes during the run).
    pub cut_links: usize,
    /// Per-shard statistics, merged by each shard's worker (feeds
    /// load-imbalance diagnostics and, for distributed runs, per-process
    /// reporting).
    pub per_shard: Vec<NetworkStats>,
    /// Per-shard wall-time attribution (compute / slack-wait / ingest /
    /// flush), in shard order. Empty unless stall profiling was enabled.
    pub stalls: Vec<StallProfile>,
}

impl ShardSummary {
    /// Delivered packets per shard — the quickest load-balance signal.
    pub fn per_shard_delivered(&self) -> Vec<u64> {
        self.per_shard.iter().map(|s| s.delivered_packets).collect()
    }

    /// Ratio of the busiest shard's busy cycles to the average (1.0 =
    /// perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        if self.per_shard.is_empty() {
            return 1.0;
        }
        let busy: Vec<u64> = self.per_shard.iter().map(|s| s.busy_cycles).collect();
        let max = *busy.iter().max().unwrap() as f64;
        let avg = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Causal breakdown of the imbalance reported by
    /// [`load_imbalance`](Self::load_imbalance): one line per shard
    /// attributing its wall time to compute vs. slack-wait vs. ingest vs.
    /// flush. A shard whose neighbors lag shows up as wait-heavy; the
    /// lagging shard itself as compute-heavy. Empty when profiling was off.
    pub fn stall_breakdown(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.stalls.iter().enumerate() {
            let _ = writeln!(
                out,
                "shard {i}: {} ({:.1} ms attributed)",
                p.summary(),
                p.total_ns() as f64 / 1e6
            );
        }
        out
    }

    /// All shards' stall profiles merged into one.
    pub fn total_stalls(&self) -> StallProfile {
        let mut total = StallProfile::default();
        for p in &self.stalls {
            total.merge(p);
        }
        total
    }
}

/// The complete result of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Merged network statistics over the measured window.
    pub network: NetworkStats,
    /// Per-tile network statistics.
    pub per_node: Vec<NetworkStats>,
    /// Simulated cycles in the measured window.
    pub measured_cycles: Cycle,
    /// Wall-clock time spent simulating the measured window.
    pub wall_time: Duration,
    /// Wall-clock time spent simulating the warm-up window (zero when no
    /// warm-up was configured).
    pub warmup_wall_time: Duration,
    /// Host threads used.
    pub threads: usize,
    /// Synchronization mode label.
    pub sync_label: String,
    /// Power results, if power modeling was enabled.
    pub power: Option<PowerReport>,
    /// Thermal results, if thermal modeling was enabled.
    pub thermal: Option<ThermalReport>,
    /// Shard layout of the run, when it executed on the sharded runtime.
    pub shard: Option<ShardSummary>,
    /// Flit-lifecycle event trace of the measured window, when tracing was
    /// enabled on the builder (in node-index order; canonical by
    /// construction for a sequential run).
    pub trace: Option<hornet_obs::trace::TraceDump>,
    /// Telemetry samples collected during parallel runs, when periodic
    /// sampling was enabled.
    pub samples: Vec<hornet_obs::metrics::TelemetrySample>,
}

impl SimReport {
    /// Simulated cycles per wall-clock second — the simulator-performance
    /// metric behind the speedup curves of Figure 6.
    pub fn simulation_speed(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.measured_cycles as f64 / secs
        }
    }

    /// Estimated packet-latency quantiles `(p50, p95, p99)` in cycles,
    /// recovered from the merged log₂ latency histogram; `None` until a
    /// packet has been delivered.
    pub fn latency_quantiles(&self) -> Option<(f64, f64, f64)> {
        let h = &self.network.latency_histogram;
        if h.is_empty() || h.iter().all(|&c| c == 0) {
            return None;
        }
        Some((
            hornet_obs::history::histogram_quantile(h, 0.50),
            hornet_obs::history::histogram_quantile(h, 0.95),
            hornet_obs::history::histogram_quantile(h, 0.99),
        ))
    }

    /// Human-readable summary: headline throughput (cycles/sec), wall-clock
    /// phase totals, network statistics, and — when profiling ran — the
    /// per-shard stall breakdown.
    pub fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "simulated {} cycles in {:.3} s ({:.0} cycles/sec, {} threads, {})",
            self.measured_cycles,
            self.wall_time.as_secs_f64(),
            self.simulation_speed(),
            self.threads,
            self.sync_label
        );
        let _ = writeln!(
            out,
            "wall clock: warmup {:.3} s, measured {:.3} s",
            self.warmup_wall_time.as_secs_f64(),
            self.wall_time.as_secs_f64()
        );
        let _ = writeln!(
            out,
            "network: {} packets / {} flits delivered, avg latency {:.2} cycles",
            self.network.delivered_packets,
            self.network.delivered_flits,
            self.network.avg_packet_latency()
        );
        if let Some((p50, p95, p99)) = self.latency_quantiles() {
            let _ = writeln!(
                out,
                "latency quantiles (est. from log2 histogram): p50 {p50:.1}, p95 {p95:.1}, \
                 p99 {p99:.1} cycles"
            );
        }
        if let Some(shard) = &self.shard {
            let _ = writeln!(
                out,
                "shards: {} ({} cut links), load imbalance {:.3}",
                shard.shards,
                shard.cut_links,
                shard.load_imbalance()
            );
            if !shard.stalls.is_empty() {
                out.push_str(&shard.stall_breakdown());
            }
        }
        out
    }

    /// Machine-readable summary of the same fields as [`text`](Self::text),
    /// as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"measured_cycles\":{},\"wall_time_s\":{:.6},\"warmup_wall_time_s\":{:.6},\
             \"cycles_per_sec\":{:.1},\"threads\":{},\"sync\":\"{}\"",
            self.measured_cycles,
            self.wall_time.as_secs_f64(),
            self.warmup_wall_time.as_secs_f64(),
            self.simulation_speed(),
            self.threads,
            self.sync_label
        );
        let _ = write!(
            out,
            ",\"delivered_packets\":{},\"delivered_flits\":{},\"avg_packet_latency\":{:.4}",
            self.network.delivered_packets,
            self.network.delivered_flits,
            self.network.avg_packet_latency()
        );
        if let Some((p50, p95, p99)) = self.latency_quantiles() {
            let _ = write!(
                out,
                ",\"latency_p50\":{p50:.4},\"latency_p95\":{p95:.4},\"latency_p99\":{p99:.4}"
            );
        }
        if let Some(shard) = &self.shard {
            let _ = write!(
                out,
                ",\"shards\":{},\"cut_links\":{},\"load_imbalance\":{:.4}",
                shard.shards,
                shard.cut_links,
                shard.load_imbalance()
            );
            if !shard.stalls.is_empty() {
                out.push_str(",\"stalls\":[");
                for (i, p) in shard.stalls.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"compute_ns\":{},\"wait_ns\":{},\"ingest_ns\":{},\"flush_ns\":{}}}",
                        p.compute_ns, p.wait_ns, p.ingest_ns, p.flush_ns
                    );
                }
                out.push(']');
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_report_peak() {
        let sample = |w: f64| PowerSample {
            dynamic_w: w,
            leakage_w: 0.0,
            energy_j: 0.0,
            cycles: 1,
        };
        let r = PowerReport {
            per_tile_avg_w: vec![1.0, 2.0],
            total_avg_w: 3.0,
            samples: vec![
                (10, vec![sample(1.0), sample(1.0)]),
                (20, vec![sample(3.0), sample(2.0)]),
            ],
        };
        assert_eq!(r.peak_total_w(), 5.0);
    }

    #[test]
    fn thermal_report_accessors() {
        let r = ThermalReport {
            time_series: vec![(10, vec![50.0, 60.0]), (20, vec![55.0, 70.0])],
            final_temperatures: vec![55.0, 70.0],
            hotspot_tile: 1,
        };
        assert_eq!(r.peak_temp(), 70.0);
        assert_eq!(r.mean_final_temp(), 62.5);
        assert_eq!(r.tile_trace(0), vec![(10, 50.0), (20, 55.0)]);
    }

    #[test]
    fn simulation_speed_handles_zero_time() {
        let r = SimReport::default();
        assert_eq!(r.simulation_speed(), 0.0);
    }
}
