//! # hornet-core
//!
//! The parallel cycle-level simulation engine of HORNET-RS — the paper's
//! primary contribution — plus the top-level simulation façade.
//!
//! * [`engine`] — tiles are distributed over worker threads; barriers run
//!   twice per cycle (cycle-accurate, bit-identical to sequential simulation)
//!   or once every *N* cycles (loose synchronization: faster, near-100 %
//!   timing fidelity because measurements ride inside the flits); idle
//!   periods can be fast-forwarded.
//! * [`sim`] — [`sim::SimulationBuilder`] assembles geometry, routing, VC
//!   allocation, a traffic frontend (synthetic / trace / SPLASH-like / custom
//!   agents), engine configuration and optional power + thermal modeling.
//! * [`report`] — the resulting statistics, power and thermal traces.
//!
//! ```
//! use hornet_core::sim::{SimulationBuilder, TrafficKind};
//! use hornet_net::geometry::Geometry;
//!
//! let report = SimulationBuilder::new()
//!     .geometry(Geometry::mesh2d(4, 4))
//!     .traffic(TrafficKind::uniform(0.01))
//!     .measured_cycles(1_000)
//!     .seed(1)
//!     .build()?
//!     .run()?;
//! assert!(report.network.delivered_packets > 0);
//! # Ok::<(), hornet_core::sim::SimError>(())
//! ```

pub mod engine;
pub mod report;
pub mod sim;

pub use engine::{EngineConfig, ParallelEngine, SyncMode};
pub use report::{PowerReport, SimReport, ThermalReport};
pub use sim::{SimError, Simulation, SimulationBuilder, TrafficKind};
