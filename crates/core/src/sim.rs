//! The top-level simulation façade.
//!
//! [`SimulationBuilder`] assembles a complete simulated multicore — geometry,
//! routing, VC allocation, traffic frontend (synthetic, trace-driven,
//! SPLASH-like, MIPS cores, native threads, or custom agents), parallel-engine
//! configuration, and optional power/thermal modeling — and produces a
//! [`Simulation`] whose [`run`](Simulation::run) yields a [`SimReport`].

use crate::engine::{EngineConfig, ParallelEngine, SyncMode};
use crate::report::{PowerReport, ShardSummary, SimReport, ThermalReport};
use hornet_net::agent::NodeAgent;
use hornet_net::config::{ConfigError, NetworkConfig};
use hornet_net::geometry::Geometry;
use hornet_net::ids::{Cycle, NodeId};
use hornet_net::kernel::KernelMode;
use hornet_net::network::Network;
use hornet_net::routing::{FlowSpec, RoutingKind};
use hornet_net::stats::RouterActivity;
use hornet_net::vca::VcAllocKind;
use hornet_obs::serve::{ObsHub, ObsServer};
use hornet_power::energy::{activity_delta, PowerConfig, RouterPowerModel};
use hornet_power::thermal::{ThermalConfig, ThermalGrid};
use hornet_traffic::injector::{flows_for_pattern, SyntheticConfig, SyntheticInjector};
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use hornet_traffic::splash::{SplashBenchmark, SplashWorkload};
use hornet_traffic::trace::{Trace, TraceInjector};
use std::sync::Arc;
use std::time::Instant;

/// Errors produced while building or running a simulation.
#[derive(Debug)]
pub enum SimError {
    /// The network configuration was invalid.
    Config(ConfigError),
    /// The requested traffic frontend cannot be applied to the geometry.
    Traffic(String),
    /// The live-monitoring HTTP server could not be started.
    Http(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid network configuration: {e}"),
            SimError::Traffic(msg) => write!(f, "invalid traffic configuration: {msg}"),
            SimError::Http(msg) => write!(f, "cannot start HTTP server: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// The traffic frontend driving the simulation.
pub enum TrafficKind {
    /// No built-in traffic (attach custom agents with
    /// [`SimulationBuilder::agent`]).
    None,
    /// Synthetic pattern on every node.
    Synthetic {
        /// Destination pattern.
        pattern: SyntheticPattern,
        /// Injection process.
        process: InjectionProcess,
        /// Packet length in flits.
        packet_len: u32,
    },
    /// A SPLASH-2-like synthesized workload.
    Splash {
        /// Which benchmark to synthesize.
        benchmark: SplashBenchmark,
        /// Memory-controller placement.
        memory_controllers: Vec<NodeId>,
        /// Offered-load scaling factor (1.0 = the benchmark's default).
        load_scale: f64,
    },
    /// Replay a trace (events are split by source node).
    Trace {
        /// The trace to replay.
        trace: Trace,
        /// Horizon for periodic trace events.
        horizon: Cycle,
    },
}

impl TrafficKind {
    /// Uniform-random Bernoulli traffic at `rate` packets/node/cycle with
    /// 8-flit packets.
    pub fn uniform(rate: f64) -> Self {
        TrafficKind::Synthetic {
            pattern: SyntheticPattern::UniformRandom,
            process: InjectionProcess::Bernoulli { rate },
            packet_len: 8,
        }
    }

    /// A named synthetic pattern at `rate` packets/node/cycle.
    pub fn pattern(pattern: SyntheticPattern, rate: f64) -> Self {
        TrafficKind::Synthetic {
            pattern,
            process: InjectionProcess::Bernoulli { rate },
            packet_len: 8,
        }
    }

    /// A SPLASH-like workload with a single corner memory controller.
    pub fn splash(benchmark: SplashBenchmark) -> Self {
        TrafficKind::Splash {
            benchmark,
            memory_controllers: vec![NodeId::new(0)],
            load_scale: 1.0,
        }
    }
}

/// Options for power/thermal modeling during a run.
struct PowerOptions {
    power: PowerConfig,
    thermal: Option<ThermalConfig>,
    sample_interval: Cycle,
    /// Multiplies simulated time when integrating the thermal RC network, so
    /// that thermal transients are visible within the (short) simulated
    /// windows; equivalent to assuming each measured window repeats
    /// `time_scale` times.
    time_scale: f64,
}

/// Builder for a [`Simulation`].
pub struct SimulationBuilder {
    geometry: Geometry,
    routing: RoutingKind,
    vca: VcAllocKind,
    vcs_per_port: usize,
    vc_buffer_depth: usize,
    link_bandwidth: u32,
    bidirectional_links: bool,
    traffic: TrafficKind,
    custom_agents: Vec<(NodeId, Box<dyn NodeAgent>)>,
    extra_flows: Vec<FlowSpec>,
    warmup: Cycle,
    measured: Cycle,
    seed: u64,
    threads: usize,
    sync: SyncMode,
    fast_forward: bool,
    pin_threads: bool,
    kernel: KernelMode,
    power: Option<PowerOptions>,
    trace_events: usize,
    profile: bool,
    telemetry_every: Option<u64>,
    http_addr: Option<String>,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// Creates a builder with the paper's default configuration: an 8×8 mesh,
    /// XY routing, dynamic VCA, 4 VCs of 4 flits, no traffic.
    pub fn new() -> Self {
        Self {
            geometry: Geometry::mesh2d(8, 8),
            routing: RoutingKind::Xy,
            vca: VcAllocKind::Dynamic,
            vcs_per_port: 4,
            vc_buffer_depth: 4,
            link_bandwidth: 1,
            bidirectional_links: false,
            traffic: TrafficKind::None,
            custom_agents: Vec::new(),
            extra_flows: Vec::new(),
            warmup: 0,
            measured: 10_000,
            seed: 0,
            threads: 1,
            sync: SyncMode::CycleAccurate,
            fast_forward: false,
            pin_threads: false,
            kernel: KernelMode::Auto,
            power: None,
            trace_events: 0,
            profile: false,
            telemetry_every: None,
            http_addr: None,
        }
    }

    /// Sets the interconnect geometry.
    pub fn geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Sets the routing algorithm.
    pub fn routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the VC-allocation algorithm.
    pub fn vc_allocation(mut self, vca: VcAllocKind) -> Self {
        self.vca = vca;
        self
    }

    /// Sets the number of virtual channels per port.
    pub fn vcs_per_port(mut self, vcs: usize) -> Self {
        self.vcs_per_port = vcs;
        self
    }

    /// Sets the depth of each VC buffer, in flits.
    pub fn vc_buffer_depth(mut self, depth: usize) -> Self {
        self.vc_buffer_depth = depth;
        self
    }

    /// Sets the link bandwidth in flits/cycle.
    pub fn link_bandwidth(mut self, bw: u32) -> Self {
        self.link_bandwidth = bw;
        self
    }

    /// Enables bandwidth-adaptive bidirectional links.
    pub fn bidirectional_links(mut self, enabled: bool) -> Self {
        self.bidirectional_links = enabled;
        self
    }

    /// Selects the traffic frontend.
    pub fn traffic(mut self, traffic: TrafficKind) -> Self {
        self.traffic = traffic;
        self
    }

    /// Attaches a custom agent to a node (may be called repeatedly).
    pub fn agent(mut self, node: NodeId, agent: Box<dyn NodeAgent>) -> Self {
        self.custom_agents.push((node, agent));
        self
    }

    /// Adds flows that the routing tables must cover beyond the ones implied
    /// by the traffic frontend (needed when custom agents send packets).
    pub fn flows(mut self, flows: Vec<FlowSpec>) -> Self {
        self.extra_flows = flows;
        self
    }

    /// Sets the number of warm-up cycles discarded before measurement.
    pub fn warmup_cycles(mut self, cycles: Cycle) -> Self {
        self.warmup = cycles;
        self
    }

    /// Sets the number of measured cycles.
    pub fn measured_cycles(mut self, cycles: Cycle) -> Self {
        self.measured = cycles;
        self
    }

    /// Sets the master random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of host threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the synchronization mode.
    pub fn sync(mut self, sync: SyncMode) -> Self {
        self.sync = sync;
        self
    }

    /// Enables fast-forwarding of idle periods.
    pub fn fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    /// Pins shard worker threads to host cores (Linux `sched_setaffinity`;
    /// a no-op elsewhere).
    pub fn pin_threads(mut self, enabled: bool) -> Self {
        self.pin_threads = enabled;
        self
    }

    /// Selects whether tiles run through the compiled SoA cycle kernel
    /// ([`hornet_net::kernel::MeshKernel`]) or the per-router interpreter.
    /// The default, [`KernelMode::Auto`], uses the kernel whenever the
    /// configuration is eligible (and honors the `HORNET_KERNEL` environment
    /// variable); results are bit-identical either way.
    pub fn kernel(mut self, mode: KernelMode) -> Self {
        self.kernel = mode;
        self
    }

    /// Enables cycle-stamped flit-lifecycle event tracing with a per-tile
    /// ring of `capacity` events; the measured window's trace lands in
    /// [`SimReport::trace`](crate::report::SimReport). `0` disables tracing.
    pub fn trace_events(mut self, capacity: usize) -> Self {
        self.trace_events = capacity;
        self
    }

    /// Enables per-shard wall-time stall profiling (compute / slack-wait /
    /// ingest / flush), reported in the shard summary.
    pub fn profile_stalls(mut self, enabled: bool) -> Self {
        self.profile = enabled;
        self
    }

    /// Collects a telemetry sample per shard roughly every `every` cycles
    /// during parallel runs, reported in
    /// [`SimReport::samples`](crate::report::SimReport).
    pub fn telemetry_every(mut self, every: Option<u64>) -> Self {
        self.telemetry_every = every;
        self
    }

    /// Serves live run state over HTTP on `addr` (e.g. `"127.0.0.1:9464"`)
    /// for the duration of [`Simulation::run`]: `/healthz`, `/status`,
    /// `/metrics` (Prometheus text exposition), `/trace?since_cycle=N` and
    /// `/alerts`. The server is strictly read-only — enabling it does not
    /// perturb simulation results. Implies a default telemetry period of
    /// 1 000 cycles when [`telemetry_every`](Self::telemetry_every) is unset.
    pub fn http_addr(mut self, addr: Option<String>) -> Self {
        self.http_addr = addr;
        self
    }

    /// Enables power modeling (and, with `thermal`, thermal modeling),
    /// sampling every `sample_interval` cycles.
    pub fn power_model(
        mut self,
        power: PowerConfig,
        thermal: Option<ThermalConfig>,
        sample_interval: Cycle,
        time_scale: f64,
    ) -> Self {
        self.power = Some(PowerOptions {
            power,
            thermal,
            sample_interval: sample_interval.max(1),
            time_scale: time_scale.max(1.0),
        });
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is invalid (disconnected
    /// geometry, zero-sized buffers, flows referencing unknown nodes, …).
    pub fn build(self) -> Result<Simulation, SimError> {
        let geometry = Arc::new(self.geometry.clone());
        // Work out which flows the routing tables must cover.
        let mut flows: Vec<FlowSpec> = self.extra_flows.clone();
        match &self.traffic {
            TrafficKind::None => {
                if flows.is_empty() && !self.custom_agents.is_empty() {
                    flows = FlowSpec::all_to_all(&geometry);
                }
            }
            TrafficKind::Synthetic { pattern, .. } => {
                flows.extend(flows_for_pattern(pattern, &geometry));
            }
            TrafficKind::Splash { .. } => flows.extend(FlowSpec::all_to_all(&geometry)),
            TrafficKind::Trace { trace, .. } => {
                flows.extend(
                    trace
                        .flow_pairs()
                        .into_iter()
                        .map(|(s, d)| FlowSpec::pair(s, d, geometry.node_count())),
                );
            }
        }
        flows.sort_by_key(|f| (f.src, f.dst));
        flows.dedup();

        let net_config = NetworkConfig::new(self.geometry.clone())
            .with_routing(self.routing)
            .with_vca(self.vca)
            .with_vcs(self.vcs_per_port, self.vc_buffer_depth)
            .with_link_bandwidth(self.link_bandwidth)
            .with_bidirectional_links(self.bidirectional_links)
            .with_flows(flows);
        let mut network = Network::new(&net_config, self.seed)?;

        // Attach the traffic frontend.
        match self.traffic {
            TrafficKind::None => {}
            TrafficKind::Synthetic {
                pattern,
                process,
                packet_len,
            } => {
                for node in geometry.nodes() {
                    network.attach_agent(
                        node,
                        Box::new(SyntheticInjector::new(
                            Arc::clone(&geometry),
                            SyntheticConfig {
                                pattern: pattern.clone(),
                                process,
                                packet_len,
                                stop_after: None,
                                max_packets: None,
                            },
                        )),
                    );
                }
            }
            TrafficKind::Splash {
                benchmark,
                memory_controllers,
                load_scale,
            } => {
                if memory_controllers.is_empty() {
                    return Err(SimError::Traffic(
                        "SPLASH workloads need at least one memory controller".to_string(),
                    ));
                }
                let workload = SplashWorkload::new(benchmark, Arc::clone(&geometry))
                    .with_memory_controllers(memory_controllers)
                    .scaled(load_scale);
                workload.attach_all(&mut network);
            }
            TrafficKind::Trace { trace, horizon } => {
                let node_count = geometry.node_count();
                for (i, per_node) in trace.split_by_source(node_count).into_iter().enumerate() {
                    network.attach_agent(
                        NodeId::from(i),
                        Box::new(TraceInjector::new(per_node, node_count, horizon)),
                    );
                }
            }
        }
        for (node, agent) in self.custom_agents {
            if node.index() >= geometry.node_count() {
                return Err(SimError::Traffic(format!(
                    "agent attached to out-of-range node {node}"
                )));
            }
            network.attach_agent(node, agent);
        }

        let mut engine = ParallelEngine::from_network(
            network,
            EngineConfig {
                threads: self.threads,
                sync: self.sync,
                fast_forward: self.fast_forward,
                pin_threads: self.pin_threads,
                kernel: self.kernel,
            },
        );
        if self.trace_events > 0 {
            engine.enable_tracing(self.trace_events);
        }
        engine.set_profiling(self.profile);
        let telemetry_every = match (self.telemetry_every, &self.http_addr) {
            (None, Some(_)) => Some(1_000),
            (every, _) => every,
        };
        engine.set_telemetry_every(telemetry_every);
        // Start the live-monitoring server now (rather than inside `run`) so
        // callers can learn the bound address — `http_addr` may name port 0 —
        // before the run starts.
        let http = match &self.http_addr {
            None => None,
            Some(addr) => {
                let hub = Arc::new(ObsHub::new());
                engine.set_live_hub(Some(Arc::clone(&hub)));
                let server =
                    ObsServer::spawn(addr, hub).map_err(|e| SimError::Http(e.to_string()))?;
                Some(server)
            }
        };
        Ok(Simulation {
            engine,
            geometry: (*geometry).clone(),
            warmup: self.warmup,
            measured: self.measured,
            power: self.power,
            trace_events: self.trace_events,
            http,
        })
    }
}

/// The shard layout of the engine's last parallel run, for the report.
fn shard_summary(engine: &ParallelEngine) -> Option<ShardSummary> {
    engine.shard_info().map(|info| ShardSummary {
        shards: info.shards,
        tiles_per_shard: info.tiles_per_shard.clone(),
        cut_links: info.cut_links,
        per_shard: info.per_shard_stats.clone(),
        stalls: info.per_shard_profiles.clone(),
    })
}

/// A fully assembled simulation, ready to run.
pub struct Simulation {
    engine: ParallelEngine,
    geometry: Geometry,
    warmup: Cycle,
    measured: Cycle,
    power: Option<PowerOptions>,
    trace_events: usize,
    http: Option<ObsServer>,
}

impl Simulation {
    /// The underlying engine (e.g. to inspect per-tile state between runs).
    pub fn engine(&self) -> &ParallelEngine {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut ParallelEngine {
        &mut self.engine
    }

    /// The address the live-monitoring HTTP server is bound to, when
    /// [`SimulationBuilder::http_addr`] was set (useful with port 0).
    pub fn http_local_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().map(ObsServer::addr)
    }

    /// Runs the warm-up and measured windows and produces the report.
    ///
    /// # Errors
    ///
    /// Currently infallible at run time; the `Result` is kept so future
    /// frontends (e.g. external trace files) can report I/O failures.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        let warmup_start = Instant::now();
        let mut warmup_wall_time = std::time::Duration::ZERO;
        if self.warmup > 0 {
            self.engine.run(self.warmup);
            // Discard warm-up statistics, trace events and telemetry so the
            // report covers exactly the measured window.
            self.engine.reset_stats();
            self.engine.take_samples();
            self.engine.take_runtime_trace();
            if self.trace_events > 0 {
                self.engine.drain_trace();
            }
            warmup_wall_time = warmup_start.elapsed();
        }
        let start = Instant::now();
        let power_options = self.power.take();
        let (power, thermal) = match &power_options {
            None => {
                self.engine.run(self.measured);
                (None, None)
            }
            Some(opts) => self.run_with_power(opts),
        };
        let wall_time = start.elapsed();
        let network = self.engine.stats();
        let per_node = self.engine.per_node_stats();
        let shard = shard_summary(&self.engine);
        let trace = (self.trace_events > 0).then(|| {
            let mut dump = self.engine.drain_trace();
            dump.merge(self.engine.take_runtime_trace());
            dump
        });
        let samples = self.engine.take_samples();
        if let Some(mut server) = self.http.take() {
            server.shutdown();
        }
        Ok(SimReport {
            network,
            per_node,
            measured_cycles: self.measured,
            wall_time,
            warmup_wall_time,
            threads: self.engine.config().threads,
            sync_label: self.engine.config().sync.label(),
            power,
            thermal,
            shard,
            trace,
            samples,
        })
    }

    /// Runs until every agent completes (closed-loop workloads such as the
    /// MIPS cores or Cannon's algorithm), up to `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Traffic`] if the workload did not complete within
    /// `max_cycles`.
    pub fn run_to_completion(mut self, max_cycles: Cycle) -> Result<SimReport, SimError> {
        let start = Instant::now();
        let completed = self.engine.run_to_completion(max_cycles);
        if !completed {
            return Err(SimError::Traffic(format!(
                "workload did not complete within {max_cycles} cycles"
            )));
        }
        let wall_time = start.elapsed();
        let shard = shard_summary(&self.engine);
        let trace = (self.trace_events > 0).then(|| {
            let mut dump = self.engine.drain_trace();
            dump.merge(self.engine.take_runtime_trace());
            dump
        });
        let samples = self.engine.take_samples();
        if let Some(mut server) = self.http.take() {
            server.shutdown();
        }
        Ok(SimReport {
            network: self.engine.stats(),
            per_node: self.engine.per_node_stats(),
            measured_cycles: self.engine.cycle(),
            wall_time,
            warmup_wall_time: std::time::Duration::ZERO,
            threads: self.engine.config().threads,
            sync_label: self.engine.config().sync.label(),
            power: None,
            thermal: None,
            shard,
            trace,
            samples,
        })
    }

    fn run_with_power(
        &mut self,
        opts: &PowerOptions,
    ) -> (Option<PowerReport>, Option<ThermalReport>) {
        let tiles = self.geometry.node_count();
        let model = RouterPowerModel::new(opts.power);
        let width = self.geometry.width().unwrap_or(tiles);
        let height = self.geometry.height().unwrap_or(1);
        let mut grid = opts.thermal.map(|cfg| ThermalGrid::new(width, height, cfg));
        let mut prev_activity: Vec<RouterActivity> = self
            .engine
            .per_node_stats()
            .iter()
            .map(|s| s.activity.clone())
            .collect();
        let mut power_samples = Vec::new();
        let mut thermal_series = Vec::new();
        let mut energy_per_tile = vec![0.0f64; tiles];

        let mut remaining = self.measured;
        while remaining > 0 {
            let step = opts.sample_interval.min(remaining);
            self.engine.run(step);
            remaining -= step;
            let stats = self.engine.per_node_stats();
            let samples: Vec<_> = stats
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let delta = activity_delta(&s.activity, &prev_activity[i]);
                    prev_activity[i] = s.activity.clone();
                    model.sample(&delta, step)
                })
                .collect();
            for (i, s) in samples.iter().enumerate() {
                energy_per_tile[i] += s.energy_j;
            }
            if let Some(grid) = grid.as_mut() {
                let powers: Vec<f64> = samples.iter().map(|s| s.total_w()).collect();
                let seconds = step as f64 / model.config().frequency_hz * opts.time_scale;
                let steps = (seconds / opts.thermal.expect("grid implies config").dt)
                    .ceil()
                    .max(1.0) as usize;
                grid.run(&powers, steps.min(100_000));
                thermal_series.push((self.engine.cycle(), grid.temperatures().to_vec()));
            }
            power_samples.push((self.engine.cycle(), samples));
        }

        let seconds_total = self.measured as f64 / model.config().frequency_hz;
        let per_tile_avg_w: Vec<f64> = energy_per_tile
            .iter()
            .map(|e| {
                if seconds_total > 0.0 {
                    e / seconds_total
                } else {
                    0.0
                }
            })
            .collect();
        let total_avg_w = per_tile_avg_w.iter().sum();
        let power_report = PowerReport {
            per_tile_avg_w,
            total_avg_w,
            samples: power_samples,
        };
        let thermal_report = grid.map(|g| ThermalReport {
            final_temperatures: g.temperatures().to_vec(),
            hotspot_tile: g.hotspot(),
            time_series: thermal_series,
        });
        (Some(power_report), thermal_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_a_small_synthetic_simulation() {
        let report = SimulationBuilder::new()
            .geometry(Geometry::mesh2d(4, 4))
            .routing(RoutingKind::Xy)
            .vc_allocation(VcAllocKind::Dynamic)
            .traffic(TrafficKind::uniform(0.02))
            .warmup_cycles(200)
            .measured_cycles(2_000)
            .seed(42)
            .build()
            .expect("valid configuration")
            .run()
            .expect("runs");
        assert!(report.network.delivered_packets > 0);
        assert!(report.network.avg_packet_latency() > 0.0);
        assert_eq!(report.per_node.len(), 16);
        assert!(report.simulation_speed() > 0.0);
    }

    #[test]
    fn parallel_and_sequential_reports_agree_in_cycle_accurate_mode() {
        let build = |threads| {
            SimulationBuilder::new()
                .geometry(Geometry::mesh2d(4, 4))
                .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, 0.03))
                .warmup_cycles(100)
                .measured_cycles(1_500)
                .threads(threads)
                .seed(9)
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let seq = build(1);
        let par = build(4);
        assert_eq!(seq.network.delivered_packets, par.network.delivered_packets);
        assert_eq!(
            seq.network.total_packet_latency,
            par.network.total_packet_latency
        );
    }

    #[test]
    fn power_and_thermal_reports_are_produced() {
        let report = SimulationBuilder::new()
            .geometry(Geometry::mesh2d(4, 4))
            .traffic(TrafficKind::uniform(0.05))
            .measured_cycles(2_000)
            .power_model(
                PowerConfig::default(),
                Some(ThermalConfig::default()),
                500,
                1_000.0,
            )
            .seed(3)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let power = report.power.expect("power enabled");
        assert_eq!(power.per_tile_avg_w.len(), 16);
        assert!(power.total_avg_w > 0.0);
        assert_eq!(power.samples.len(), 4);
        let thermal = report.thermal.expect("thermal enabled");
        assert_eq!(thermal.final_temperatures.len(), 16);
        assert!(thermal.peak_temp() > 0.0);
    }

    #[test]
    fn invalid_agent_node_is_rejected() {
        let err = SimulationBuilder::new()
            .geometry(Geometry::mesh2d(2, 2))
            .agent(
                NodeId::new(99),
                Box::new(hornet_net::agent::SinkAgent::new()),
            )
            .build();
        assert!(matches!(err, Err(SimError::Traffic(_))));
        let msg = format!("{}", err.err().unwrap());
        assert!(msg.contains("out-of-range"));
    }

    #[test]
    fn splash_traffic_requires_memory_controllers() {
        let err = SimulationBuilder::new()
            .geometry(Geometry::mesh2d(4, 4))
            .traffic(TrafficKind::Splash {
                benchmark: SplashBenchmark::Radix,
                memory_controllers: vec![],
                load_scale: 1.0,
            })
            .build();
        assert!(matches!(err, Err(SimError::Traffic(_))));
    }
}
