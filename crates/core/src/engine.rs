//! The parallel simulation engine — the paper's primary contribution.
//!
//! The simulated system is divided into tiles (router + traffic generators +
//! private PRNG + private statistics). A topology-aware partitioner
//! ([`hornet_shard::Partitioner`]) assigns contiguous sub-mesh blocks of
//! tiles to *shards*, one shard per worker of a persistent thread pool; a
//! tile is never split between shards. Links cut by the partition are
//! rewired onto lock-free boundary mailboxes
//! ([`hornet_net::boundary`]), so the only inter-thread communication is (a)
//! cycle-stamped flits and credits crossing those mailboxes and (b) per-shard
//! atomic progress counters that neighboring shards spin on — there is no
//! global barrier on the simulation path.
//!
//! Three synchronization modes are offered:
//!
//! * [`SyncMode::CycleAccurate`] — shards run in lock-step with their
//!   cut-link neighbors and consume mailbox traffic strictly by cycle stamp.
//!   Results are bit-identical to single-threaded simulation with the same
//!   seed, down to the latency histogram.
//! * [`SyncMode::Slack(k)`] — neighboring shards may drift up to `k` cycles
//!   apart, using the one-cycle link latency as conservative lookahead.
//!   Functional correctness is preserved exactly (flits arrive in order,
//!   credits never overflow a buffer) and, because measurements ride inside
//!   the flits, reported latencies retain near-100 % fidelity; only timing
//!   skews bounded by `k` are introduced. `Slack(0)` is identical to
//!   [`SyncMode::CycleAccurate`].
//! * [`SyncMode::Periodic(n)`] — shards check the drift condition only every
//!   `n` cycles (batched synchronization, the paper's loose-sync headline
//!   configuration). Coarser than `Slack` at equal bound, but cheaper per
//!   cycle.
//!
//! When fast-forwarding is enabled, the engine skips idle periods: if, at a
//! synchronization boundary, no flit is buffered anywhere (including boundary
//! mailboxes) and no injector has pending work, all tile clocks jump to the
//! next injection event.

use hornet_net::geometry::Topology;
use hornet_net::ids::Cycle;
use hornet_net::kernel::{KernelMode, MeshKernel};
use hornet_net::network::{Network, NetworkNode};
use hornet_net::payload::PayloadStore;
use hornet_net::stats::NetworkStats;
use hornet_obs::metrics::TelemetrySample;
use hornet_obs::profile::StallProfile;
use hornet_obs::serve::ObsHub;
use hornet_obs::trace::TraceDump;
use hornet_shard::{Partitioner, RunParams, ShardConfig, ShardRuntime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How simulation shards synchronize.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncMode {
    /// Lock-step neighbor synchronization with strict cycle-stamped mailbox
    /// consumption; parallel results are bit-identical to sequential
    /// simulation.
    CycleAccurate,
    /// Drift check once every `n` cycles; faster, slightly lossy timing.
    Periodic(u64),
    /// Neighboring shards may drift up to `k` cycles apart; timing skew is
    /// bounded by `k`, functional behaviour is exact. `Slack(0)` ≡
    /// [`SyncMode::CycleAccurate`].
    Slack(u64),
}

impl SyncMode {
    /// A short label for reports.
    pub fn label(self) -> String {
        match self {
            SyncMode::CycleAccurate => "cycle-accurate".to_string(),
            SyncMode::Periodic(n) => format!("sync-every-{n}"),
            SyncMode::Slack(k) => format!("slack-{k}"),
        }
    }

    /// The shard-runtime parameters this mode maps onto:
    /// `(slack, quantum, strict, barrier_batches)`.
    fn shard_params(self) -> (u64, u64, bool, bool) {
        match self {
            SyncMode::CycleAccurate => (0, 1, true, false),
            SyncMode::Slack(k) => (k, 1, k == 0, false),
            SyncMode::Periodic(n) => {
                let n = n.max(1);
                // Periodic keeps its classic rendezvous-per-batch profile;
                // Periodic(1) degenerates to the bit-exact lock-step mode.
                (0, n, n == 1, n > 1)
            }
        }
    }
}

/// Configuration of the parallel engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of worker threads (tiles are divided equally among them).
    /// `1` selects the purely sequential path.
    pub threads: usize,
    /// Synchronization mode.
    pub sync: SyncMode,
    /// Skip idle periods (no buffered flits, no pending injections) by
    /// advancing all clocks to the next injection event.
    pub fast_forward: bool,
    /// Pin each shard worker thread to one host core (Linux
    /// `sched_setaffinity`; a no-op elsewhere). Takes effect when the worker
    /// pool is created, i.e. on the first parallel run.
    pub pin_threads: bool,
    /// Whether to run tiles through the compiled SoA cycle kernel
    /// ([`hornet_net::kernel::MeshKernel`]). The kernel is bit-identical to
    /// the per-router interpreter; configurations it cannot specialize
    /// (adaptive routing, bidirectional links, >64 VCs per tile) silently
    /// fall back to the interpreter.
    pub kernel: KernelMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            sync: SyncMode::CycleAccurate,
            fast_forward: false,
            pin_threads: false,
            kernel: KernelMode::Auto,
        }
    }
}

/// Summary of the shard layout and per-shard results of the last parallel
/// run.
#[derive(Clone, Debug)]
pub struct ShardRunInfo {
    /// Number of shards the tiles were partitioned into.
    pub shards: usize,
    /// Tiles per shard, in shard order.
    pub tiles_per_shard: Vec<usize>,
    /// Physical links cut by the partition (each rewired onto boundary
    /// mailboxes for the duration of the run).
    pub cut_links: usize,
    /// Statistics merged per shard by its worker (no cross-thread atomics).
    pub per_shard_stats: Vec<NetworkStats>,
    /// Per-shard wall-time attribution (all zeros unless profiling was
    /// enabled with [`ParallelEngine::set_profiling`]).
    pub per_shard_profiles: Vec<StallProfile>,
}

/// The parallel cycle-level simulation engine.
pub struct ParallelEngine {
    nodes: Vec<NetworkNode>,
    /// The process-wide payload store (the DMA side channel every bridge
    /// deposits into). All shards of the thread backend share it, so the
    /// unified cycle driver's payload channel is the same-process fast path;
    /// `None` when the engine was built from bare tiles.
    payload_store: Option<Arc<PayloadStore>>,
    config: EngineConfig,
    cycle: Cycle,
    /// `(width, height)` of the row-major mesh the tiles came from, when
    /// known; drives the topology-aware partitioner.
    mesh_dims: Option<(usize, usize)>,
    /// The persistent worker pool, created on the first parallel run and
    /// reused (threads and all) across subsequent `run()` calls.
    runtime: Option<ShardRuntime>,
    /// Shard layout and per-shard statistics of the last parallel run.
    shard_info: Option<ShardRunInfo>,
    /// Attribute worker wall time to compute/wait/ingest/flush phases.
    profile: bool,
    /// Telemetry sampling period in cycles (`None` = off).
    telemetry_every: Option<u64>,
    /// Ring capacity used when tracing was enabled (also sizes the per-shard
    /// runtime rings of parallel runs); 0 = tracing off.
    trace_capacity: usize,
    /// Telemetry samples accumulated across runs (drained by the caller).
    samples: Vec<TelemetrySample>,
    /// Runtime events (slack waits, checkpoints) accumulated across parallel
    /// runs (drained by the caller).
    runtime_trace: TraceDump,
    /// Live observation hub fed a copy of every telemetry sample as it is
    /// emitted (the embedded HTTP server's data source); `None` = off.
    live_hub: Option<Arc<ObsHub>>,
}

impl std::fmt::Debug for ParallelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEngine")
            .field("tiles", &self.nodes.len())
            .field("config", &self.config)
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl ParallelEngine {
    /// Creates an engine over an assembled network, inheriting the network's
    /// geometry so the partitioner can align shard boundaries to mesh rows.
    pub fn from_network(network: Network, config: EngineConfig) -> Self {
        let mesh_dims = match *network.geometry().topology() {
            Topology::Mesh2D { width, height } | Topology::Torus2D { width, height } => {
                Some((width, height))
            }
            // Row-major 3-D meshes stack layers of rows; partitioning the
            // flattened `height × layers` rows keeps blocks contiguous.
            Topology::Mesh3D {
                width,
                height,
                layers,
                ..
            } => Some((width, height * layers)),
            Topology::Line { .. } | Topology::Ring { .. } | Topology::Custom { .. } => None,
        };
        let (nodes, store) = network.into_nodes();
        let mut engine = Self::new(nodes, config);
        engine.payload_store = Some(store);
        engine.mesh_dims = mesh_dims;
        engine
    }

    /// Creates an engine over a set of tiles (no topology hint: the
    /// partitioner falls back to balanced contiguous index ranges).
    pub fn new(nodes: Vec<NetworkNode>, config: EngineConfig) -> Self {
        Self {
            nodes,
            payload_store: None,
            config,
            cycle: 0,
            mesh_dims: None,
            runtime: None,
            shard_info: None,
            profile: false,
            telemetry_every: None,
            trace_capacity: 0,
            samples: Vec::new(),
            runtime_trace: TraceDump::default(),
            live_hub: None,
        }
    }

    /// Enables flit-lifecycle event tracing on every tile (ring of
    /// `capacity` events per tile) plus, on parallel runs, a per-shard
    /// runtime event ring of the same capacity. Tracing never perturbs the
    /// simulation: traced runs are bit-identical to untraced ones.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace_capacity = capacity;
        for n in &mut self.nodes {
            n.enable_tracing(capacity);
        }
    }

    /// Collects every tile's flit-lifecycle events into one dump, in
    /// node-index order (use [`TraceDump::canonicalize`] before comparing
    /// dumps across backends).
    pub fn drain_trace(&mut self) -> TraceDump {
        let mut dump = TraceDump::default();
        for n in &mut self.nodes {
            n.drain_trace(&mut dump);
        }
        dump
    }

    /// Takes the runtime events (slack waits, checkpoint captures)
    /// accumulated by parallel runs since the last call.
    pub fn take_runtime_trace(&mut self) -> TraceDump {
        std::mem::take(&mut self.runtime_trace)
    }

    /// Enables per-shard wall-time phase attribution (reported in
    /// [`ShardRunInfo::per_shard_profiles`]).
    pub fn set_profiling(&mut self, enabled: bool) {
        self.profile = enabled;
    }

    /// Enables periodic telemetry sampling every `every` cycles on parallel
    /// runs (collected via [`take_samples`](Self::take_samples)).
    pub fn set_telemetry_every(&mut self, every: Option<u64>) {
        self.telemetry_every = every;
    }

    /// Takes the telemetry samples accumulated since the last call.
    pub fn take_samples(&mut self) -> Vec<TelemetrySample> {
        std::mem::take(&mut self.samples)
    }

    /// Attaches (or detaches) a live observation hub: parallel runs push a
    /// copy of every telemetry sample into it as emitted, so an embedded
    /// HTTP server can report progress mid-run. Strictly write-only from the
    /// simulation's point of view — results are unaffected.
    pub fn set_live_hub(&mut self, hub: Option<Arc<ObsHub>>) {
        self.live_hub = hub;
    }

    /// The shared payload store (the DMA side channel), when the engine was
    /// assembled from a [`Network`]. Agents attached after construction can
    /// deposit payloads here; within one process every shard shares it.
    pub fn payload_store(&self) -> Option<&Arc<PayloadStore>> {
        self.payload_store.as_ref()
    }

    /// Shard layout and per-shard statistics of the most recent parallel
    /// run, if any.
    pub fn shard_info(&self) -> Option<&ShardRunInfo> {
        self.shard_info.as_ref()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Changes the engine configuration (takes effect on the next `run`).
    pub fn set_config(&mut self, config: EngineConfig) {
        self.config = config;
    }

    /// The current simulated cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The simulated tiles.
    pub fn nodes(&self) -> &[NetworkNode] {
        &self.nodes
    }

    /// Mutable access to the simulated tiles (e.g. to attach agents).
    pub fn nodes_mut(&mut self) -> &mut [NetworkNode] {
        &mut self.nodes
    }

    /// Merged statistics across all tiles.
    pub fn stats(&self) -> NetworkStats {
        let mut merged = NetworkStats::new();
        for n in &self.nodes {
            merged.merge(n.stats());
        }
        merged
    }

    /// Per-tile statistics (for thermal maps and per-tile power).
    pub fn per_node_stats(&self) -> Vec<NetworkStats> {
        self.nodes.iter().map(|n| n.stats().clone()).collect()
    }

    /// Clears every tile's statistics (used to discard the warm-up window).
    pub fn reset_stats(&mut self) {
        for n in &mut self.nodes {
            n.reset_stats();
        }
    }

    /// True if no flit is buffered anywhere and no injector has pending work.
    pub fn is_idle(&self) -> bool {
        self.nodes.iter().all(NetworkNode::is_idle)
    }

    /// True once every agent has reported completion.
    pub fn finished(&self) -> bool {
        self.nodes.iter().all(NetworkNode::finished)
    }

    /// Runs for `cycles` simulated cycles.
    pub fn run(&mut self, cycles: Cycle) {
        self.run_inner(cycles, false);
    }

    /// Runs until every agent reports completion and the network drains, or
    /// until `max_cycles` elapse. Returns `true` on completion.
    pub fn run_to_completion(&mut self, max_cycles: Cycle) -> bool {
        self.run_inner(max_cycles, true);
        self.finished() && self.is_idle()
    }

    fn run_inner(&mut self, cycles: Cycle, detect_completion: bool) {
        if cycles == 0 {
            return;
        }
        let threads = self.config.threads.clamp(1, self.nodes.len().max(1));
        if threads == 1 {
            self.run_sequential(cycles, detect_completion);
        } else {
            self.run_sharded(cycles, detect_completion, threads);
        }
    }

    fn run_sequential(&mut self, cycles: Cycle, detect_completion: bool) {
        let end = self.cycle + cycles;
        // Compiled per run: the kernel holds no authoritative state, only
        // derived acceleration structures, so dropping it at the end keeps
        // snapshots and node access between runs unconstrained.
        let mut kernel = if self.config.kernel.enabled() {
            MeshKernel::compile(&self.nodes, false)
        } else {
            None
        };
        while self.cycle < end {
            if detect_completion && self.finished() && self.is_idle() {
                return;
            }
            if self.config.fast_forward && self.is_idle() {
                let next = self
                    .nodes
                    .iter()
                    .filter_map(|n| n.next_event(self.cycle))
                    .min();
                match next {
                    Some(next) if next > self.cycle + 1 => {
                        let target = next.min(end) - 1;
                        let skipped = target - self.cycle;
                        for n in &mut self.nodes {
                            n.set_cycle(target);
                            n.router_mut().stats_mut().fast_forwarded_cycles += skipped;
                        }
                        self.cycle = target;
                    }
                    Some(_) => {}
                    None => {
                        for n in &mut self.nodes {
                            n.set_cycle(end);
                            n.router_mut().stats_mut().fast_forwarded_cycles += end - self.cycle;
                        }
                        self.cycle = end;
                        return;
                    }
                }
            }
            let now = self.cycle + 1;
            if let Some(k) = kernel.as_mut() {
                k.posedge(&mut self.nodes, now);
                k.negedge(&mut self.nodes, now);
            } else {
                for n in &mut self.nodes {
                    n.posedge(now);
                }
                for n in &mut self.nodes {
                    n.negedge(now);
                }
            }
            self.cycle = now;
        }
    }

    /// Runs the tiles on the sharded runtime: topology-aware partition,
    /// boundary mailboxes on cut links, slack-based neighbor synchronization.
    fn run_sharded(&mut self, cycles: Cycle, detect_completion: bool, threads: usize) {
        let partition = {
            let partitioner = Partitioner::new(threads);
            match self.mesh_dims {
                Some((w, h)) => partitioner.mesh(w, h),
                None => partitioner.linear(self.nodes.len()),
            }
        };
        if partition.shard_count() == 1 {
            // One shard means no cross-thread communication at all; the
            // sequential path is strictly faster.
            return self.run_sequential(cycles, detect_completion);
        }
        let (slack, quantum, strict, barrier_batches) = self.config.sync.shard_params();
        let params = RunParams {
            start: self.cycle,
            cycles,
            slack,
            quantum,
            strict,
            barrier_batches,
            fast_forward: self.config.fast_forward,
            detect_completion,
            profile: self.profile,
            telemetry_every: self.telemetry_every,
            trace_runtime: self.trace_capacity,
            live: self.live_hub.clone(),
            kernel: self.config.kernel,
        };
        let pin = self.config.pin_threads;
        let runtime = self.runtime.get_or_insert_with(|| {
            ShardRuntime::with_config(partition.shard_count(), ShardConfig { pin_to_cores: pin })
        });
        let nodes = std::mem::take(&mut self.nodes);
        let outcome = runtime.run(nodes, &partition, params);
        self.nodes = outcome.nodes;
        self.cycle = outcome.final_cycle;
        self.samples.extend(outcome.samples);
        self.runtime_trace.merge(outcome.runtime_trace);
        self.shard_info = Some(ShardRunInfo {
            shards: partition.shard_count(),
            tiles_per_shard: (0..partition.shard_count())
                .map(|s| partition.tiles(s))
                .collect(),
            cut_links: outcome.cut_links,
            per_shard_stats: outcome.per_shard_stats,
            per_shard_profiles: outcome.per_shard_profiles,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornet_net::config::NetworkConfig;
    use hornet_net::geometry::Geometry;
    use hornet_net::routing::RoutingKind;
    use hornet_net::vca::VcAllocKind;
    use hornet_traffic::injector::{flows_for_pattern, SyntheticConfig, SyntheticInjector};
    use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
    use std::sync::Arc;

    fn build_engine(threads: usize, sync: SyncMode, seed: u64, rate: f64) -> ParallelEngine {
        let geometry = Arc::new(Geometry::mesh2d(4, 4));
        let pattern = SyntheticPattern::Transpose;
        let flows = flows_for_pattern(&pattern, &geometry);
        let cfg = NetworkConfig::new((*geometry).clone())
            .with_routing(RoutingKind::Xy)
            .with_vca(VcAllocKind::Dynamic)
            .with_flows(flows);
        let mut network = Network::new(&cfg, seed).unwrap();
        for node in geometry.nodes() {
            network.attach_agent(
                node,
                Box::new(SyntheticInjector::new(
                    Arc::clone(&geometry),
                    SyntheticConfig {
                        pattern: pattern.clone(),
                        process: InjectionProcess::Bernoulli { rate },
                        packet_len: 4,
                        stop_after: None,
                        max_packets: Some(50),
                    },
                )),
            );
        }
        ParallelEngine::from_network(
            network,
            EngineConfig {
                threads,
                sync,
                fast_forward: false,
                pin_threads: false,
                kernel: KernelMode::Auto,
            },
        )
    }

    #[test]
    fn cycle_accurate_parallel_matches_sequential_exactly() {
        let mut seq = build_engine(1, SyncMode::CycleAccurate, 99, 0.05);
        seq.run(3_000);
        let s = seq.stats();

        for threads in [2, 4] {
            let mut par = build_engine(threads, SyncMode::CycleAccurate, 99, 0.05);
            par.run(3_000);
            let p = par.stats();
            assert_eq!(
                p.delivered_packets, s.delivered_packets,
                "{threads} threads"
            );
            assert_eq!(
                p.total_packet_latency, s.total_packet_latency,
                "{threads} threads"
            );
            assert_eq!(p.injected_flits, s.injected_flits, "{threads} threads");
            assert_eq!(p.total_hops, s.total_hops, "{threads} threads");
        }
    }

    #[test]
    fn loose_sync_preserves_functional_correctness() {
        let mut seq = build_engine(1, SyncMode::CycleAccurate, 7, 0.05);
        seq.run_to_completion(100_000);
        let s = seq.stats();

        // The paper's headline loose-sync configuration synchronizes every 5
        // cycles (Table I).
        let mut par = build_engine(4, SyncMode::Periodic(5), 7, 0.05);
        assert!(par.run_to_completion(100_000));
        let p = par.stats();
        // Every offered packet is still delivered exactly once.
        assert_eq!(p.delivered_packets, s.delivered_packets);
        assert_eq!(p.delivered_flits, s.delivered_flits);
        assert_eq!(p.routing_failures, 0);
        // Timing may deviate slightly, but not wildly. (On this deliberately
        // tiny 16-tile network the relative skew is much larger than on the
        // paper's 1024-tile systems, and it grows when the host is busy with
        // other test binaries, so the bound is deliberately loose; the
        // fidelity-vs-period curve itself is measured by `repro_fig6b`.)
        let accuracy = p.latency_accuracy_vs(&s);
        assert!(accuracy > 0.6, "loose-sync accuracy {accuracy} too low");
    }

    #[test]
    fn slack_zero_is_bit_identical_to_sequential() {
        let mut seq = build_engine(1, SyncMode::CycleAccurate, 41, 0.05);
        seq.run(3_000);
        let s = seq.stats();
        for threads in [2, 4] {
            let mut par = build_engine(threads, SyncMode::Slack(0), 41, 0.05);
            par.run(3_000);
            let p = par.stats();
            assert_eq!(
                p.delivered_packets, s.delivered_packets,
                "{threads} threads"
            );
            assert_eq!(
                p.total_packet_latency, s.total_packet_latency,
                "{threads} threads"
            );
            assert_eq!(
                p.latency_histogram, s.latency_histogram,
                "{threads} threads"
            );
            assert_eq!(p.busy_cycles, s.busy_cycles, "{threads} threads");
        }
    }

    #[test]
    fn slack_preserves_functional_correctness_with_bounded_drift() {
        let mut seq = build_engine(1, SyncMode::CycleAccurate, 7, 0.05);
        seq.run_to_completion(100_000);
        let s = seq.stats();

        let mut par = build_engine(4, SyncMode::Slack(5), 7, 0.05);
        assert!(par.run_to_completion(100_000));
        let p = par.stats();
        // Every offered packet is still delivered exactly once.
        assert_eq!(p.delivered_packets, s.delivered_packets);
        assert_eq!(p.delivered_flits, s.delivered_flits);
        assert_eq!(p.routing_failures, 0);
        // Timing skew is bounded by the 5-cycle slack per hop; on this tiny
        // mesh the relative deviation still stays moderate.
        let accuracy = p.latency_accuracy_vs(&s);
        assert!(accuracy > 0.6, "slack-sync accuracy {accuracy} too low");
    }

    #[test]
    fn shard_info_reports_layout_and_per_shard_stats() {
        let mut par = build_engine(4, SyncMode::CycleAccurate, 99, 0.05);
        par.run(1_000);
        let info = par.shard_info().expect("parallel run records shard info");
        assert_eq!(info.shards, 4, "4×4 mesh, 4 threads: one row per shard");
        assert_eq!(info.tiles_per_shard, vec![4, 4, 4, 4]);
        assert_eq!(info.cut_links, 12, "three row boundaries × four links");
        let merged: u64 = info
            .per_shard_stats
            .iter()
            .map(|s| s.delivered_packets)
            .sum();
        assert_eq!(merged, par.stats().delivered_packets);
    }

    #[test]
    fn run_to_completion_stops_early() {
        let mut engine = build_engine(2, SyncMode::CycleAccurate, 3, 0.05);
        assert!(engine.run_to_completion(200_000));
        assert!(engine.cycle() < 200_000, "must stop well before the limit");
        assert!(engine.finished() && engine.is_idle());
        // 16 nodes x 50 packets each.
        assert_eq!(engine.stats().delivered_packets, 16 * 50);
    }

    #[test]
    fn fast_forward_skips_idle_time_in_parallel_mode() {
        let build = |ff: bool| {
            let geometry = Arc::new(Geometry::mesh2d(2, 2));
            let pattern = SyntheticPattern::NearestNeighbor;
            let flows = flows_for_pattern(&pattern, &geometry);
            let cfg = NetworkConfig::new((*geometry).clone()).with_flows(flows);
            let mut network = Network::new(&cfg, 5).unwrap();
            // Only node 0 injects, one packet every 400 cycles.
            network.attach_agent(
                hornet_net::ids::NodeId::new(0),
                Box::new(SyntheticInjector::new(
                    Arc::clone(&geometry),
                    SyntheticConfig {
                        pattern: pattern.clone(),
                        process: InjectionProcess::Periodic {
                            period: 400,
                            offset: 0,
                        },
                        packet_len: 2,
                        stop_after: Some(1_600),
                        max_packets: Some(4),
                    },
                )),
            );
            let mut engine = ParallelEngine::from_network(
                network,
                EngineConfig {
                    threads: 2,
                    sync: SyncMode::CycleAccurate,
                    fast_forward: ff,
                    pin_threads: false,
                    kernel: KernelMode::Auto,
                },
            );
            engine.run(2_000);
            engine.stats()
        };
        let without = build(false);
        let with = build(true);
        assert_eq!(without.delivered_packets, with.delivered_packets);
        assert_eq!(without.total_packet_latency, with.total_packet_latency);
        assert!(with.fast_forwarded_cycles > 0);
        assert!(with.simulated_cycles < without.simulated_cycles);
    }

    #[test]
    fn fast_forward_with_loose_sync_preserves_functional_results() {
        // fast_forward + SyncMode::Periodic ride the same boundary checks:
        // idle detection (now a single O(1) aggregate-counter load per tile)
        // decides when all clocks jump. Functional results must match the
        // sequential run exactly; only timings may skew.
        let build = |threads: usize, sync: SyncMode| {
            let geometry = Arc::new(Geometry::mesh2d(4, 4));
            let pattern = SyntheticPattern::Transpose;
            let flows = flows_for_pattern(&pattern, &geometry);
            let cfg = NetworkConfig::new((*geometry).clone())
                .with_routing(RoutingKind::Xy)
                .with_flows(flows);
            let mut network = Network::new(&cfg, 23).unwrap();
            // Sparse periodic traffic: long idle gaps between bursts, so the
            // run exercises the fast-forward path heavily.
            for node in geometry.nodes() {
                network.attach_agent(
                    node,
                    Box::new(SyntheticInjector::new(
                        Arc::clone(&geometry),
                        SyntheticConfig {
                            pattern: pattern.clone(),
                            process: InjectionProcess::Periodic {
                                period: 300,
                                offset: (node.index() as u64 % 4) * 25,
                            },
                            packet_len: 4,
                            stop_after: None,
                            max_packets: Some(8),
                        },
                    )),
                );
            }
            let mut engine = ParallelEngine::from_network(
                network,
                EngineConfig {
                    threads,
                    sync,
                    fast_forward: true,
                    pin_threads: false,
                    kernel: KernelMode::Auto,
                },
            );
            assert!(engine.run_to_completion(1_000_000), "must complete");
            engine.stats()
        };
        let seq = build(1, SyncMode::CycleAccurate);
        let par = build(4, SyncMode::Periodic(5));
        // Every offered packet is delivered exactly once in both runs.
        assert_eq!(par.delivered_packets, seq.delivered_packets);
        assert_eq!(par.delivered_flits, seq.delivered_flits);
        assert_eq!(par.injected_flits, seq.injected_flits);
        assert_eq!(par.routing_failures, 0);
        assert_eq!(seq.routing_failures, 0);
        // Both runs must actually have skipped idle periods.
        assert!(
            seq.fast_forwarded_cycles > 0,
            "sequential run never skipped"
        );
        assert!(par.fast_forwarded_cycles > 0, "parallel run never skipped");
    }

    #[test]
    fn thread_count_is_clamped_to_tile_count() {
        let mut engine = build_engine(64, SyncMode::CycleAccurate, 1, 0.02);
        engine.run(200); // 16 tiles, 64 requested threads: must not panic
        assert_eq!(engine.cycle(), 200);
    }
}
