//! The parallel simulation engine — the paper's primary contribution.
//!
//! The simulated system is divided into tiles (router + traffic generators +
//! private PRNG + private statistics). Tiles are partitioned across worker
//! threads; a tile is never split between threads, so the only inter-thread
//! communication is (a) flits crossing tile-to-tile VC buffers (protected by
//! their head/tail locks) and (b) the synchronization barrier.
//!
//! Two synchronization modes are offered:
//!
//! * [`SyncMode::CycleAccurate`] — all threads synchronize on a barrier twice
//!   per simulated cycle (once after the positive edge, once after the
//!   negative edge). Results are bit-identical to single-threaded simulation
//!   with the same seed.
//! * [`SyncMode::Periodic(n)`] — threads synchronize only every `n` cycles.
//!   Functional correctness is preserved (flits still arrive in order,
//!   subject to the original ordering constraints), and because measurements
//!   ride inside the flits, reported latencies retain near-100 % fidelity;
//!   only small timing skews are introduced. This trades a little accuracy
//!   for substantially better scaling across hyperthreads and sockets.
//!
//! When fast-forwarding is enabled, the engine skips idle periods: if, at a
//! synchronization boundary, no flit is buffered anywhere and no injector has
//! pending work, all tile clocks jump to the next injection event.

use hornet_net::ids::Cycle;
use hornet_net::network::{Network, NetworkNode};
use hornet_net::stats::NetworkStats;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

/// How often simulation threads synchronize.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncMode {
    /// Barrier twice per cycle; parallel results are identical to sequential
    /// simulation.
    CycleAccurate,
    /// Barrier once every `n` cycles; faster, slightly lossy timing.
    Periodic(u64),
}

impl SyncMode {
    /// The number of cycles between barriers.
    pub fn period(self) -> u64 {
        match self {
            SyncMode::CycleAccurate => 1,
            SyncMode::Periodic(n) => n.max(1),
        }
    }

    /// A short label for reports.
    pub fn label(self) -> String {
        match self {
            SyncMode::CycleAccurate => "cycle-accurate".to_string(),
            SyncMode::Periodic(n) => format!("sync-every-{n}"),
        }
    }
}

/// Configuration of the parallel engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of worker threads (tiles are divided equally among them).
    /// `1` selects the purely sequential path.
    pub threads: usize,
    /// Synchronization mode.
    pub sync: SyncMode,
    /// Skip idle periods (no buffered flits, no pending injections) by
    /// advancing all clocks to the next injection event.
    pub fast_forward: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            sync: SyncMode::CycleAccurate,
            fast_forward: false,
        }
    }
}

/// Shared coordination state between worker threads.
struct Shared {
    barrier: Barrier,
    /// Per-worker: buffered flits + pending injections in its shard.
    busy: Vec<AtomicU64>,
    /// Per-worker: earliest next event in its shard (`u64::MAX` = none).
    next_event: Vec<AtomicU64>,
    /// Per-worker: all agents in the shard report completion.
    finished: Vec<AtomicBool>,
    /// Cycle to jump to (fast-forward), or 0 for "no jump".
    skip_to: AtomicU64,
    /// Set when the simulation should stop (completion detected).
    stop: AtomicBool,
}

/// The parallel cycle-level simulation engine.
pub struct ParallelEngine {
    nodes: Vec<NetworkNode>,
    config: EngineConfig,
    cycle: Cycle,
}

impl std::fmt::Debug for ParallelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEngine")
            .field("tiles", &self.nodes.len())
            .field("config", &self.config)
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl ParallelEngine {
    /// Creates an engine over an assembled network.
    pub fn from_network(network: Network, config: EngineConfig) -> Self {
        let (nodes, _store) = network.into_nodes();
        Self::new(nodes, config)
    }

    /// Creates an engine over a set of tiles.
    pub fn new(nodes: Vec<NetworkNode>, config: EngineConfig) -> Self {
        Self {
            nodes,
            config,
            cycle: 0,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Changes the engine configuration (takes effect on the next `run`).
    pub fn set_config(&mut self, config: EngineConfig) {
        self.config = config;
    }

    /// The current simulated cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The simulated tiles.
    pub fn nodes(&self) -> &[NetworkNode] {
        &self.nodes
    }

    /// Mutable access to the simulated tiles (e.g. to attach agents).
    pub fn nodes_mut(&mut self) -> &mut [NetworkNode] {
        &mut self.nodes
    }

    /// Merged statistics across all tiles.
    pub fn stats(&self) -> NetworkStats {
        let mut merged = NetworkStats::new();
        for n in &self.nodes {
            merged.merge(n.stats());
        }
        merged
    }

    /// Per-tile statistics (for thermal maps and per-tile power).
    pub fn per_node_stats(&self) -> Vec<NetworkStats> {
        self.nodes.iter().map(|n| n.stats().clone()).collect()
    }

    /// Clears every tile's statistics (used to discard the warm-up window).
    pub fn reset_stats(&mut self) {
        for n in &mut self.nodes {
            n.reset_stats();
        }
    }

    /// True if no flit is buffered anywhere and no injector has pending work.
    pub fn is_idle(&self) -> bool {
        self.nodes.iter().all(NetworkNode::is_idle)
    }

    /// True once every agent has reported completion.
    pub fn finished(&self) -> bool {
        self.nodes.iter().all(NetworkNode::finished)
    }

    /// Runs for `cycles` simulated cycles.
    pub fn run(&mut self, cycles: Cycle) {
        self.run_inner(cycles, false);
    }

    /// Runs until every agent reports completion and the network drains, or
    /// until `max_cycles` elapse. Returns `true` on completion.
    pub fn run_to_completion(&mut self, max_cycles: Cycle) -> bool {
        self.run_inner(max_cycles, true);
        self.finished() && self.is_idle()
    }

    fn run_inner(&mut self, cycles: Cycle, detect_completion: bool) {
        if cycles == 0 {
            return;
        }
        let threads = self.config.threads.clamp(1, self.nodes.len().max(1));
        if threads == 1 {
            self.run_sequential(cycles, detect_completion);
        } else {
            self.run_parallel(cycles, detect_completion, threads);
        }
    }

    fn run_sequential(&mut self, cycles: Cycle, detect_completion: bool) {
        let end = self.cycle + cycles;
        while self.cycle < end {
            if detect_completion && self.finished() && self.is_idle() {
                return;
            }
            if self.config.fast_forward && self.is_idle() {
                let next = self
                    .nodes
                    .iter()
                    .filter_map(|n| n.next_event(self.cycle))
                    .min();
                match next {
                    Some(next) if next > self.cycle + 1 => {
                        let target = next.min(end) - 1;
                        let skipped = target - self.cycle;
                        for n in &mut self.nodes {
                            n.set_cycle(target);
                            n.router_mut().stats_mut().fast_forwarded_cycles += skipped;
                        }
                        self.cycle = target;
                    }
                    Some(_) => {}
                    None => {
                        for n in &mut self.nodes {
                            n.set_cycle(end);
                            n.router_mut().stats_mut().fast_forwarded_cycles += end - self.cycle;
                        }
                        self.cycle = end;
                        return;
                    }
                }
            }
            let now = self.cycle + 1;
            for n in &mut self.nodes {
                n.posedge(now);
            }
            for n in &mut self.nodes {
                n.negedge(now);
            }
            self.cycle = now;
        }
    }

    fn run_parallel(&mut self, cycles: Cycle, detect_completion: bool, threads: usize) {
        let start = self.cycle;
        let end = start + cycles;
        let period = self.config.sync.period();
        let cycle_accurate = matches!(self.config.sync, SyncMode::CycleAccurate);
        let fast_forward = self.config.fast_forward;
        let check_at_boundary = fast_forward || detect_completion;

        // The number of spawned workers is the number of chunks, which may be
        // smaller than the requested thread count when tiles do not divide
        // evenly; the barrier must match the worker count exactly.
        let chunk_size = self.nodes.len().div_ceil(threads);
        let workers = self.nodes.len().div_ceil(chunk_size);

        let shared = Shared {
            barrier: Barrier::new(workers),
            busy: (0..workers).map(|_| AtomicU64::new(1)).collect(),
            next_event: (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect(),
            finished: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            skip_to: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        };
        let final_cycle = AtomicU64::new(end);
        std::thread::scope(|scope| {
            for (tid, chunk) in self.nodes.chunks_mut(chunk_size).enumerate() {
                let shared = &shared;
                let final_cycle = &final_cycle;
                scope.spawn(move || {
                    let mut now = start;
                    loop {
                        if now >= end || shared.stop.load(Ordering::Acquire) {
                            break;
                        }
                        let batch_end = (now + period).min(end);
                        if cycle_accurate {
                            // Two barriers per cycle: posedge | barrier | negedge | barrier.
                            while now < batch_end {
                                now += 1;
                                for tile in chunk.iter_mut() {
                                    tile.posedge(now);
                                }
                                shared.barrier.wait();
                                for tile in chunk.iter_mut() {
                                    tile.negedge(now);
                                }
                                shared.barrier.wait();
                            }
                        } else {
                            // Loose synchronization: run the whole batch
                            // locally, then meet the other threads.
                            while now < batch_end {
                                now += 1;
                                for tile in chunk.iter_mut() {
                                    tile.posedge(now);
                                }
                                for tile in chunk.iter_mut() {
                                    tile.negedge(now);
                                }
                            }
                            shared.barrier.wait();
                        }

                        if check_at_boundary {
                            // Publish this shard's idle / completion state.
                            // Both probes are O(1) per tile: the router's
                            // buffered-flit count is one aggregate atomic
                            // load, so this boundary check stays cheap even
                            // at 1000 tiles per shard.
                            let busy: u64 = chunk
                                .iter()
                                .map(|t| t.buffered_flits() as u64 + u64::from(!t.is_idle()))
                                .sum();
                            let next = chunk
                                .iter()
                                .filter_map(|t| t.next_event(now))
                                .min()
                                .unwrap_or(u64::MAX);
                            let fin = chunk.iter().all(NetworkNode::finished);
                            shared.busy[tid].store(busy, Ordering::Release);
                            shared.next_event[tid].store(next, Ordering::Release);
                            shared.finished[tid].store(fin, Ordering::Release);
                            shared.barrier.wait();
                            if tid == 0 {
                                let all_idle =
                                    shared.busy.iter().all(|b| b.load(Ordering::Acquire) == 0);
                                let all_finished =
                                    shared.finished.iter().all(|f| f.load(Ordering::Acquire));
                                if detect_completion && all_idle && all_finished {
                                    shared.stop.store(true, Ordering::Release);
                                    final_cycle.store(now, Ordering::Release);
                                }
                                let mut skip = 0;
                                if fast_forward && all_idle {
                                    let next = shared
                                        .next_event
                                        .iter()
                                        .map(|e| e.load(Ordering::Acquire))
                                        .min()
                                        .unwrap_or(u64::MAX);
                                    if next == u64::MAX {
                                        skip = end;
                                    } else if next > now + 1 {
                                        skip = next.min(end) - 1;
                                    }
                                }
                                shared.skip_to.store(skip, Ordering::Release);
                            }
                            shared.barrier.wait();
                            let skip = shared.skip_to.load(Ordering::Acquire);
                            if skip > now {
                                let skipped = skip - now;
                                for tile in chunk.iter_mut() {
                                    tile.set_cycle(skip);
                                    tile.router_mut().stats_mut().fast_forwarded_cycles += skipped;
                                }
                                now = skip;
                            }
                        }
                    }
                });
            }
        });

        self.cycle = if shared.stop.load(Ordering::Acquire) {
            final_cycle.load(Ordering::Acquire)
        } else {
            end
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornet_net::config::NetworkConfig;
    use hornet_net::geometry::Geometry;
    use hornet_net::routing::RoutingKind;
    use hornet_net::vca::VcAllocKind;
    use hornet_traffic::injector::{flows_for_pattern, SyntheticConfig, SyntheticInjector};
    use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
    use std::sync::Arc;

    fn build_engine(threads: usize, sync: SyncMode, seed: u64, rate: f64) -> ParallelEngine {
        let geometry = Arc::new(Geometry::mesh2d(4, 4));
        let pattern = SyntheticPattern::Transpose;
        let flows = flows_for_pattern(&pattern, &geometry);
        let cfg = NetworkConfig::new((*geometry).clone())
            .with_routing(RoutingKind::Xy)
            .with_vca(VcAllocKind::Dynamic)
            .with_flows(flows);
        let mut network = Network::new(&cfg, seed).unwrap();
        for node in geometry.nodes() {
            network.attach_agent(
                node,
                Box::new(SyntheticInjector::new(
                    Arc::clone(&geometry),
                    SyntheticConfig {
                        pattern: pattern.clone(),
                        process: InjectionProcess::Bernoulli { rate },
                        packet_len: 4,
                        stop_after: None,
                        max_packets: Some(50),
                    },
                )),
            );
        }
        ParallelEngine::from_network(
            network,
            EngineConfig {
                threads,
                sync,
                fast_forward: false,
            },
        )
    }

    #[test]
    fn cycle_accurate_parallel_matches_sequential_exactly() {
        let mut seq = build_engine(1, SyncMode::CycleAccurate, 99, 0.05);
        seq.run(3_000);
        let s = seq.stats();

        for threads in [2, 4] {
            let mut par = build_engine(threads, SyncMode::CycleAccurate, 99, 0.05);
            par.run(3_000);
            let p = par.stats();
            assert_eq!(
                p.delivered_packets, s.delivered_packets,
                "{threads} threads"
            );
            assert_eq!(
                p.total_packet_latency, s.total_packet_latency,
                "{threads} threads"
            );
            assert_eq!(p.injected_flits, s.injected_flits, "{threads} threads");
            assert_eq!(p.total_hops, s.total_hops, "{threads} threads");
        }
    }

    #[test]
    fn loose_sync_preserves_functional_correctness() {
        let mut seq = build_engine(1, SyncMode::CycleAccurate, 7, 0.05);
        seq.run_to_completion(100_000);
        let s = seq.stats();

        // The paper's headline loose-sync configuration synchronizes every 5
        // cycles (Table I).
        let mut par = build_engine(4, SyncMode::Periodic(5), 7, 0.05);
        assert!(par.run_to_completion(100_000));
        let p = par.stats();
        // Every offered packet is still delivered exactly once.
        assert_eq!(p.delivered_packets, s.delivered_packets);
        assert_eq!(p.delivered_flits, s.delivered_flits);
        assert_eq!(p.routing_failures, 0);
        // Timing may deviate slightly, but not wildly. (On this deliberately
        // tiny 16-tile network the relative skew is much larger than on the
        // paper's 1024-tile systems, and it grows when the host is busy with
        // other test binaries, so the bound is deliberately loose; the
        // fidelity-vs-period curve itself is measured by `repro_fig6b`.)
        let accuracy = p.latency_accuracy_vs(&s);
        assert!(accuracy > 0.6, "loose-sync accuracy {accuracy} too low");
    }

    #[test]
    fn run_to_completion_stops_early() {
        let mut engine = build_engine(2, SyncMode::CycleAccurate, 3, 0.05);
        assert!(engine.run_to_completion(200_000));
        assert!(engine.cycle() < 200_000, "must stop well before the limit");
        assert!(engine.finished() && engine.is_idle());
        // 16 nodes x 50 packets each.
        assert_eq!(engine.stats().delivered_packets, 16 * 50);
    }

    #[test]
    fn fast_forward_skips_idle_time_in_parallel_mode() {
        let build = |ff: bool| {
            let geometry = Arc::new(Geometry::mesh2d(2, 2));
            let pattern = SyntheticPattern::NearestNeighbor;
            let flows = flows_for_pattern(&pattern, &geometry);
            let cfg = NetworkConfig::new((*geometry).clone()).with_flows(flows);
            let mut network = Network::new(&cfg, 5).unwrap();
            // Only node 0 injects, one packet every 400 cycles.
            network.attach_agent(
                hornet_net::ids::NodeId::new(0),
                Box::new(SyntheticInjector::new(
                    Arc::clone(&geometry),
                    SyntheticConfig {
                        pattern: pattern.clone(),
                        process: InjectionProcess::Periodic {
                            period: 400,
                            offset: 0,
                        },
                        packet_len: 2,
                        stop_after: Some(1_600),
                        max_packets: Some(4),
                    },
                )),
            );
            let mut engine = ParallelEngine::from_network(
                network,
                EngineConfig {
                    threads: 2,
                    sync: SyncMode::CycleAccurate,
                    fast_forward: ff,
                },
            );
            engine.run(2_000);
            engine.stats()
        };
        let without = build(false);
        let with = build(true);
        assert_eq!(without.delivered_packets, with.delivered_packets);
        assert_eq!(without.total_packet_latency, with.total_packet_latency);
        assert!(with.fast_forwarded_cycles > 0);
        assert!(with.simulated_cycles < without.simulated_cycles);
    }

    #[test]
    fn fast_forward_with_loose_sync_preserves_functional_results() {
        // fast_forward + SyncMode::Periodic ride the same boundary checks:
        // idle detection (now a single O(1) aggregate-counter load per tile)
        // decides when all clocks jump. Functional results must match the
        // sequential run exactly; only timings may skew.
        let build = |threads: usize, sync: SyncMode| {
            let geometry = Arc::new(Geometry::mesh2d(4, 4));
            let pattern = SyntheticPattern::Transpose;
            let flows = flows_for_pattern(&pattern, &geometry);
            let cfg = NetworkConfig::new((*geometry).clone())
                .with_routing(RoutingKind::Xy)
                .with_flows(flows);
            let mut network = Network::new(&cfg, 23).unwrap();
            // Sparse periodic traffic: long idle gaps between bursts, so the
            // run exercises the fast-forward path heavily.
            for node in geometry.nodes() {
                network.attach_agent(
                    node,
                    Box::new(SyntheticInjector::new(
                        Arc::clone(&geometry),
                        SyntheticConfig {
                            pattern: pattern.clone(),
                            process: InjectionProcess::Periodic {
                                period: 300,
                                offset: (node.index() as u64 % 4) * 25,
                            },
                            packet_len: 4,
                            stop_after: None,
                            max_packets: Some(8),
                        },
                    )),
                );
            }
            let mut engine = ParallelEngine::from_network(
                network,
                EngineConfig {
                    threads,
                    sync,
                    fast_forward: true,
                },
            );
            assert!(engine.run_to_completion(1_000_000), "must complete");
            engine.stats()
        };
        let seq = build(1, SyncMode::CycleAccurate);
        let par = build(4, SyncMode::Periodic(5));
        // Every offered packet is delivered exactly once in both runs.
        assert_eq!(par.delivered_packets, seq.delivered_packets);
        assert_eq!(par.delivered_flits, seq.delivered_flits);
        assert_eq!(par.injected_flits, seq.injected_flits);
        assert_eq!(par.routing_failures, 0);
        assert_eq!(seq.routing_failures, 0);
        // Both runs must actually have skipped idle periods.
        assert!(
            seq.fast_forwarded_cycles > 0,
            "sequential run never skipped"
        );
        assert!(par.fast_forwarded_cycles > 0, "parallel run never skipped");
    }

    #[test]
    fn thread_count_is_clamped_to_tile_count() {
        let mut engine = build_engine(64, SyncMode::CycleAccurate, 1, 0.02);
        engine.run(200); // 16 tiles, 64 requested threads: must not panic
        assert_eq!(engine.cycle(), 200);
    }
}
